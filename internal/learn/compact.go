package learn

import (
	"hash/fnv"
	"math"
	"time"

	"repro/internal/engine/plan"
	"repro/internal/expdata"
	"repro/internal/feat"
	"repro/internal/obs"
)

// Compaction metric handles (see DESIGN.md §11).
var (
	mCompactRecords = obs.C("learn.compact.records")
	mCompactSkipped = obs.C("learn.compact.skipped")
	mCompactDeduped = obs.C("learn.compact.deduped")
	mCompactPairs   = obs.C("learn.compact.pairs")
	// Featurize phase of the train path (DESIGN.md §15); fit and eval live
	// in loop.go.
	mFeaturizeLatency = obs.H("learn.train.featurize")
)

// CompactStats accounts for every input record of a compaction: records
// are used, skipped (with a reason), or deduplicated — hostile or partial
// telemetry is counted, never panicked on.
type CompactStats struct {
	// Total is the input record count.
	Total int `json:"total"`
	// Used is the number of records surviving validation, dedup, and the
	// recency window.
	Used int `json:"used"`
	// SkippedCost counts records with NaN/∞/negative costs.
	SkippedCost int `json:"skipped_cost,omitempty"`
	// SkippedChannels counts records with missing channels, oversized
	// vectors, or non-finite attributes.
	SkippedChannels int `json:"skipped_channels,omitempty"`
	// Deduped counts records displaced by a fresher duplicate.
	Deduped int `json:"deduped,omitempty"`
	// Windowed counts deduped records dropped by the recency window.
	Windowed int `json:"windowed,omitempty"`
	// Padded counts used records whose channel vectors needed zero-padding.
	Padded int `json:"padded,omitempty"`
	// Templates is the number of distinct template groups among used records.
	Templates int `json:"templates"`
	// Pairs is the number of labeled pairs emitted.
	Pairs int `json:"pairs"`
	// Labels tallies pairs per class (improvement, regression, unsure).
	Labels [expdata.NumLabels]int `json:"labels"`
}

// LabeledSet is compacted telemetry ready for training and evaluation:
// featurized pair vectors, ternary labels, and the template group of each
// pair (for leakage-free splitting).
type LabeledSet struct {
	X      [][]float64
	Y      []int
	Groups []uint64
	// Records are the used records in recency order (the drift baseline is
	// summarized from them).
	Records []compactRecord
	Stats   CompactStats
	// FeaturizeSeconds is the time spent materializing X — fingerprinting
	// plus featurization (near-zero when a TrainSet served its cached rows).
	FeaturizeSeconds float64
	// Reused reports that X came straight from a TrainSet's previous cycle
	// (identical pair content, no featurization ran).
	Reused bool
}

// compactRecord is one validated, canonicalized record.
type compactRecord struct {
	rec      *expdata.PlanRecord
	vectors  [][]float64 // per featurizer channel, padded to plan.NumKeys
	template uint64
}

// Compact folds raw telemetry into a labeled training set: each record is
// validated (bad costs and malformed channels are skipped and counted),
// deduplicated by plan identity keeping the freshest measurement, windowed
// to the most recent window records, grouped by (db, query), and paired
// into ordered, α-labeled vectors. Deterministic: records are processed in
// input order and groups emitted in first-seen order.
func Compact(recs []expdata.PlanRecord, f *feat.Featurizer, o Options) *LabeledSet {
	return compactInto(recs, f, o, nil)
}

// compactInto is Compact with an optional featurization arena: with a
// TrainSet the pair vectors land in its pooled slab (or, for an unchanged
// pair sequence, are served straight from the previous cycle); with nil
// every pair vector is freshly allocated. Identical output either way.
func compactInto(recs []expdata.PlanRecord, f *feat.Featurizer, o Options, ts *TrainSet) *LabeledSet {
	o = o.withDefaults()
	chNames := make([]string, len(f.Channels))
	for i, c := range f.Channels {
		chNames[i] = c.String()
	}
	set := &LabeledSet{}
	set.Stats.Total = len(recs)
	mCompactRecords.Add(int64(len(recs)))

	// Validate + canonicalize, dedup by plan identity (fresher record wins
	// its slot, preserving the older record's position in recency order is
	// NOT wanted: a re-measured plan is fresh evidence, so the record moves
	// to the back).
	type slot struct{ idx int }
	byPlan := map[uint64]slot{}
	var kept []compactRecord
	for i := range recs {
		r := &recs[i]
		if r.CheckCosts() != nil {
			set.Stats.SkippedCost++
			continue
		}
		vs, padded, err := r.ChannelVectors(chNames, plan.NumKeys)
		if err != nil {
			set.Stats.SkippedChannels++
			continue
		}
		if padded {
			set.Stats.Padded++
		}
		cr := compactRecord{rec: r, vectors: vs, template: templateKey(r)}
		key := planKey(r, vs)
		if s, ok := byPlan[key]; ok {
			set.Stats.Deduped++
			kept[s.idx] = compactRecord{} // tombstone; compacted below
		}
		byPlan[key] = slot{idx: len(kept)}
		kept = append(kept, cr)
	}
	live := kept[:0]
	for _, cr := range kept {
		if cr.rec != nil {
			live = append(live, cr)
		}
	}
	// Recency window: keep the newest records.
	if o.Window > 0 && len(live) > o.Window {
		set.Stats.Windowed = len(live) - o.Window
		live = live[len(live)-o.Window:]
	}
	set.Records = live
	set.Stats.Used = len(live)

	// Group by (db, query) in first-seen order and emit ordered pairs.
	type gkey struct{ db, q string }
	groups := map[gkey][]int{}
	var order []gkey
	for i := range live {
		k := gkey{live[i].rec.DB, live[i].rec.Query}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	templates := map[uint64]bool{}
	var refs []pairRef
	for _, k := range order {
		idxs := groups[k]
		templates[live[idxs[0]].template] = true
		emitted := 0
	pairs:
		for _, i := range idxs {
			for _, j := range idxs {
				if i == j {
					continue
				}
				if emitted >= o.MaxPairsPerTemplate {
					break pairs
				}
				a, b := &live[i], &live[j]
				refs = append(refs, pairRef{a: int32(i), b: int32(j)})
				lbl := expdata.LabelOf(a.rec.Cost, b.rec.Cost, o.Alpha)
				set.Y = append(set.Y, int(lbl))
				set.Groups = append(set.Groups, a.template)
				set.Stats.Labels[lbl]++
				emitted++
			}
		}
	}
	set.Stats.Templates = len(templates)

	// Featurization, split from pairing so an arena can pool (or skip) it.
	t0 := time.Now()
	if ts != nil {
		set.Reused = ts.materialize(set, f, live, refs)
	} else if len(refs) > 0 {
		set.X = make([][]float64, len(refs))
		for i, pr := range refs {
			a, b := &live[pr.a], &live[pr.b]
			set.X[i] = f.PairFromVectors(a.vectors, b.vectors, a.rec.EstTotalCost, b.rec.EstTotalCost)
		}
	}
	set.FeaturizeSeconds = time.Since(t0).Seconds()
	mFeaturizeLatency.Observe(set.FeaturizeSeconds)
	set.Stats.Pairs = len(set.X)
	mCompactSkipped.Add(int64(set.Stats.SkippedCost + set.Stats.SkippedChannels))
	mCompactDeduped.Add(int64(set.Stats.Deduped))
	mCompactPairs.Add(int64(set.Stats.Pairs))
	return set
}

// templateKey returns the record's template group: the constant-stripped
// template hash when the emitting database provided one, else a hash of
// (db, query) — queries we cannot prove share a template stay in separate
// groups, which can only make the eval split stricter.
func templateKey(r *expdata.PlanRecord) uint64 {
	if r.TemplateHash != 0 {
		return r.TemplateHash
	}
	h := fnv.New64a()
	h.Write([]byte(r.DB))
	h.Write([]byte{0})
	h.Write([]byte(r.Query))
	return h.Sum64()
}

// planKey identifies a plan for deduplication: the plan fingerprint when
// present, else a content hash of the canonicalized channel vectors and the
// estimated cost — so byte-identical duplicate records collapse even when
// the emitter never set a fingerprint.
func planKey(r *expdata.PlanRecord, vs [][]float64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.DB))
	h.Write([]byte{0})
	h.Write([]byte(r.Query))
	h.Write([]byte{0})
	if r.Fingerprint != 0 {
		writeU64(h, r.Fingerprint)
		return h.Sum64()
	}
	for _, v := range vs {
		for _, x := range v {
			writeU64(h, math.Float64bits(x))
		}
		h.Write([]byte{0xff})
	}
	writeU64(h, math.Float64bits(r.EstTotalCost))
	return h.Sum64()
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// templateOrder returns the distinct template groups of a set in
// first-seen order (deterministic split input).
func (s *LabeledSet) templateOrder() []uint64 {
	seen := map[uint64]bool{}
	var order []uint64
	for _, g := range s.Groups {
		if !seen[g] {
			seen[g] = true
			order = append(order, g)
		}
	}
	return order
}
