package learn

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/embed"
	"repro/internal/obs"
)

// Embedding-drift metric handles (see DESIGN.md §16).
var (
	mEmbedDrift    = obs.G("learn.drift.embed")
	mEncoderTrains = obs.C("learn.encoder.trains")
)

// ErrNoEncoder is returned by Embedding before the first encoder-training
// promotion (or in DriftModeZ, where encoders never train).
var ErrNoEncoder = errors.New("learn: no plan encoder trained yet")

// embedMode reports whether the loop maintains encoders and embedding
// references (any mode but the pure z-score detector).
func (o Options) embedMode() bool { return o.DriftMode != DriftModeZ }

// planSamples converts a compacted window into embedding samples, in
// recency order (compaction already validated and canonicalized every
// record, so no sample is dropped here).
func planSamples(set *LabeledSet) []embed.Sample {
	out := make([]embed.Sample, 0, len(set.Records))
	for i := range set.Records {
		cr := &set.Records[i]
		out = append(out, embed.Sample{
			Vectors:  cr.vectors,
			Est:      cr.rec.EstTotalCost,
			Template: cr.template,
			Weight:   cr.rec.EffectiveWeight(),
		})
	}
	return out
}

// trainEncoder fits a plan encoder over a compacted window under the
// cycle's derived seed.
func trainEncoder(set *LabeledSet, o Options, cycleSeed int64) (*embed.Encoder, error) {
	samples := planSamples(set)
	channels := o.featurizer().Channels
	inputs := make([][]float64, len(samples))
	for i, s := range samples {
		inputs[i] = embed.PlanInput(channels, s.Vectors, s.Est)
	}
	enc, err := embed.Train(inputs, embed.Config{
		Channels: channels,
		Dim:      o.EmbedDim,
		Hidden:   o.EmbedHidden,
		Epochs:   o.EmbedEpochs,
		// Offset the cycle seed so the encoder's RNG stream never collides
		// with the forest's or the split's.
		Seed: cycleSeed + 500009,
	})
	if err != nil {
		return nil, err
	}
	mEncoderTrains.Inc()
	return enc, nil
}

// driftVerdict is the drift detectors' combination rule, factored into a
// pure function so the both-mode verdict is order-independent by
// construction: both booleans are evaluated before either is consulted
// (pinned by TestDriftVerdictOrderIndependent).
func driftVerdict(o Options, zScore float64, zValid bool, embedDist float64, embedValid bool) (fired bool, trigger string) {
	zFired := zValid && zScore > o.DriftThreshold
	embedFired := embedValid && embedDist > o.EmbedDriftThreshold
	switch o.DriftMode {
	case DriftModeEmbed:
		zFired = false
	case DriftModeZ:
		embedFired = false
	}
	switch {
	case zFired:
		return true, "drift"
	case embedFired:
		return true, "embed-drift"
	}
	return false, ""
}

// embedDistance measures the current window against the reference workload
// embedding (0, false when either side is missing or empty).
func embedDistance(enc *embed.Encoder, ref *embed.WorkloadEmbedding, set *LabeledSet) (float64, bool) {
	if enc == nil || ref == nil || len(set.Records) == 0 {
		return 0, false
	}
	cur := enc.Workload(planSamples(set))
	if cur == nil {
		return 0, false
	}
	d := embed.Distance(ref.Vector, cur.Vector)
	mEmbedDrift.Set(d)
	return d, true
}

// promoteEncoder runs the embedding side of a promotion: train an encoder
// on the promoted window, version it in the registry (same
// validate-before-admit path as an upload), and capture the window's
// workload embedding — under the new encoder — as the drift reference,
// persisting it for cross-tenant warm-start scans. Failures degrade to the
// z-score detector (noted on the report) instead of failing the promotion:
// the classifier swap already happened and is the load-bearing part.
func (l *Loop) promoteEncoder(rep *CycleReport, set *LabeledSet, cycleSeed int64) {
	enc, err := trainEncoder(set, l.opts, cycleSeed)
	if err != nil {
		rep.Reason += "; encoder: " + err.Error()
		return
	}
	var blob bytes.Buffer
	if err := embed.SaveEncoder(enc, &blob); err != nil {
		rep.Reason += "; encoder: " + err.Error()
		return
	}
	ev, err := l.reg.AddAndActivateEncoder(blob.Bytes())
	if err != nil {
		rep.Reason += "; encoder: " + err.Error()
		return
	}
	rep.EncoderVersion = ev.ID
	ref := enc.Workload(planSamples(set))
	if ref == nil {
		rep.Reason += "; encoder: empty reference window"
		return
	}
	ref.EncoderVersion = ev.ID
	if err := l.reg.SaveWorkloadEmbedding(ref); err != nil {
		rep.Reason += "; encoder: " + err.Error()
	}
	l.mu.Lock()
	l.embedRef = ref
	l.mu.Unlock()
	if l.keep > 0 {
		if _, err := l.reg.PruneEncoders(l.keep); err != nil {
			rep.Reason += "; encoder prune: " + err.Error()
		}
	}
}

// EmbeddingStatus is the GET /v1/learn/embedding view: the current window's
// workload embedding under the active encoder, and its distance to the
// reference captured at the last promotion.
type EmbeddingStatus struct {
	DriftMode      string                   `json:"drift_mode"`
	EncoderVersion int                      `json:"encoder_version"`
	Threshold      float64                  `json:"threshold"`
	Embedding      *embed.WorkloadEmbedding `json:"embedding"`
	Reference      *embed.WorkloadEmbedding `json:"reference,omitempty"`
	// Distance is the cosine distance to the reference (0 when none).
	Distance float64 `json:"distance"`
}

// Embedding computes the current workload embedding on demand. Returns
// ErrNoEncoder until a promotion has trained one, and an error when the
// current telemetry window has no usable records to embed.
func (l *Loop) Embedding() (*EmbeddingStatus, error) {
	ev := l.reg.ActiveEncoder()
	if ev == nil {
		return nil, ErrNoEncoder
	}
	recs, _ := l.source()
	set := Compact(recs, l.f, l.opts)
	cur := ev.Enc.Workload(planSamples(set))
	if cur == nil {
		return nil, fmt.Errorf("learn: no usable telemetry to embed (%d records seen)", len(recs))
	}
	cur.EncoderVersion = ev.ID
	l.mu.Lock()
	ref := l.embedRef
	l.mu.Unlock()
	st := &EmbeddingStatus{
		DriftMode:      l.opts.DriftMode,
		EncoderVersion: ev.ID,
		Threshold:      l.opts.EmbedDriftThreshold,
		Embedding:      cur,
		Reference:      ref,
	}
	if ref != nil {
		st.Distance = embed.Distance(ref.Vector, cur.Vector)
	}
	return st, nil
}
