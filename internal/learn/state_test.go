package learn

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/server/registry"
)

// TestLoopStateSpillRestore simulates an eviction between promotion and
// rollback: the monitoring window (rollback target, shadow accuracy,
// watermark) and both drift references must survive a spill/restore round
// trip, so the lifecycle completes exactly as it would have uninterrupted.
func TestLoopStateSpillRestore(t *testing.T) {
	dir := t.TempDir()
	modelDir := filepath.Join(dir, "models")
	statePath := filepath.Join(dir, "learn_state.json")
	ctx := context.Background()
	sink := &fakeSink{}
	g := &gen{}

	reg, err := registry.Open(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	loop := NewLoop(reg, sink.snapshot, 0, embedLoopOptions(7, DriftModeBoth))

	// Promote v1 on phase A, then v2 on phase B — v2 is now monitored with
	// v1 as the rollback target.
	sink.add(phaseA(g, 4)...)
	if rep, err := loop.RunCycle(ctx, "test"); err != nil || rep.Decision != DecisionPromoted {
		t.Fatalf("cycle 1: %v %+v", err, rep)
	}
	sink.add(phaseB(g, 4)...)
	if rep, err := loop.RunCycle(ctx, "test"); err != nil || rep.Decision != DecisionPromoted {
		t.Fatalf("cycle 2: %v %+v", err, rep)
	}
	before := loop.Status()
	if before.Monitoring == nil || before.Monitoring.PromotedVersion != 2 {
		t.Fatalf("cycle 2 must leave v2 monitored, got %+v", before.Monitoring)
	}

	// Evict: spill, stop, drop the loop.
	if err := loop.SaveStateFile(statePath); err != nil {
		t.Fatal(err)
	}
	loop.Stop()

	// Reload: fresh registry handle, fresh loop, restored state.
	reg2, err := registry.Open(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	loop2 := NewLoop(reg2, sink.snapshot, 0, embedLoopOptions(7, DriftModeBoth))
	defer loop2.Stop()
	if err := loop2.RestoreStateFile(statePath); err != nil {
		t.Fatal(err)
	}
	after := loop2.Status()
	if after.Cycles != before.Cycles || after.Promotions != before.Promotions {
		t.Fatalf("counters lost in spill: before %+v after %+v", before, after)
	}
	if after.Monitoring == nil || *after.Monitoring != *before.Monitoring {
		t.Fatalf("monitoring window lost in spill: before %+v after %+v", before.Monitoring, after.Monitoring)
	}

	// The restored loop completes the arc: phase A telemetry shows v2 was a
	// mistake → rollback to v1, exactly as an uninterrupted loop would.
	sink.add(phaseA(g, 4)...)
	rep, err := loop2.RunCycle(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionRolledBack {
		t.Fatalf("post-restore cycle = %s (%s), want rolled_back", rep.Decision, rep.Reason)
	}
	if act := reg2.Active(); act == nil || act.ID != 1 {
		t.Fatalf("active after restored rollback = %+v, want v1", act)
	}
}

// TestRestoreStateFileMissingAndCorrupt: a missing spill file is a clean
// start; a corrupt one surfaces an error instead of silently resetting.
func TestRestoreStateFileMissingAndCorrupt(t *testing.T) {
	reg, _ := registry.Open("")
	sink := &fakeSink{}
	loop := NewLoop(reg, sink.snapshot, 0, testLoopOptions(1))
	defer loop.Stop()
	if err := loop.RestoreStateFile(filepath.Join(t.TempDir(), "nope.json")); err != nil {
		t.Fatalf("missing state file must be a clean start, got %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if err := loop.RestoreStateFile(bad); err == nil {
		t.Fatal("corrupt state file restored silently")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
