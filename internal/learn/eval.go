package learn

import (
	"fmt"

	"repro/internal/expdata"
	"repro/internal/ml"
	"repro/internal/models"
	"repro/internal/util"
)

// EvalReport scores one model on one labeled pair set: overall accuracy
// plus the paper's regression-gate metrics — per-class precision/recall/F1,
// with the regression class (the class whose errors cost real query
// latency, §7.1) surfaced as the headline.
type EvalReport struct {
	Pairs    int     `json:"pairs"`
	Accuracy float64 `json:"accuracy"`
	// RegressionPrecision/Recall/F1 are the regression-class metrics: how
	// trustworthy the model's "this change will regress" verdicts are.
	RegressionPrecision float64 `json:"regression_precision"`
	RegressionRecall    float64 `json:"regression_recall"`
	RegressionF1        float64 `json:"regression_f1"`
	// PerClass holds precision/recall/F1/support per label, in
	// expdata.Label order (improvement, regression, unsure).
	PerClass [expdata.NumLabels]ml.ClassMetrics `json:"per_class"`
}

// evalVectors scores a classifier on pair vectors.
func evalVectors(clf *models.Classifier, X [][]float64, y []int) *EvalReport {
	conf := models.EvaluateVectors(clf, X, y)
	r := &EvalReport{Pairs: len(X), Accuracy: conf.Accuracy()}
	for cl := 0; cl < expdata.NumLabels; cl++ {
		r.PerClass[cl] = conf.Metrics(cl)
	}
	reg := r.PerClass[expdata.Regression]
	r.RegressionPrecision, r.RegressionRecall, r.RegressionF1 = reg.Precision, reg.Recall, reg.F1
	return r
}

// splitByTemplate divides a labeled set into train/eval index lists with
// whole template groups on one side — expdata.SplitQuery semantics on the
// telemetry path: a template's pairs never straddle the boundary, so the
// shadow evaluation measures generalization to unseen templates, not
// memorization. Groups are shuffled deterministically by rng and assigned
// to eval until at least evalFrac of the pairs are held out. With fewer
// than two template groups the split is impossible; the caller must reject
// the cycle rather than fall back to a leaky pair-level split.
func splitByTemplate(set *LabeledSet, evalFrac float64, rng *util.RNG) (trainIdx, evalIdx []int, err error) {
	order := set.templateOrder()
	if len(order) < 2 {
		return nil, nil, fmt.Errorf("learn: need at least 2 template groups for a leakage-free eval split, have %d", len(order))
	}
	byGroup := map[uint64][]int{}
	for i, g := range set.Groups {
		byGroup[g] = append(byGroup[g], i)
	}
	perm := rng.Perm(len(order))
	wantEval := int(float64(len(set.X)) * evalFrac)
	if wantEval < 1 {
		wantEval = 1
	}
	nEval := 0
	for _, gi := range perm {
		idxs := byGroup[order[gi]]
		// Hold out groups until the eval side is big enough, but never all
		// of them: the last group always trains.
		if nEval < wantEval && nEval+len(idxs) < len(set.X) {
			evalIdx = append(evalIdx, idxs...)
			nEval += len(idxs)
		} else {
			trainIdx = append(trainIdx, idxs...)
		}
	}
	if len(trainIdx) == 0 || len(evalIdx) == 0 {
		return nil, nil, fmt.Errorf("learn: degenerate template split (train=%d eval=%d)", len(trainIdx), len(evalIdx))
	}
	return trainIdx, evalIdx, nil
}

// subset materializes an index list as (X, y).
func (s *LabeledSet) subset(idx []int) ([][]float64, []int) {
	X := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for i, j := range idx {
		X[i] = s.X[j]
		y[i] = s.Y[j]
	}
	return X, y
}
