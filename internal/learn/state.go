package learn

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"repro/internal/embed"
)

// LoopState is the spillable in-memory state of a Loop: everything an
// eviction would otherwise lose — the drift references, the post-promotion
// monitoring window (rollback target, shadow accuracy, telemetry
// watermark), and the cycle counters the deterministic seed schedule
// derives from. Registry contents and telemetry are already durable on
// their own; this file closes the gap the tenant manager used to reset on
// reload.
type LoopState struct {
	SavedAt     time.Time `json:"saved_at"`
	Cycles      int       `json:"cycles"`
	Promotions  int       `json:"promotions"`
	Rejections  int       `json:"rejections"`
	Rollbacks   int       `json:"rollbacks"`
	LastSeen    int64     `json:"last_seen"`
	LastCycleAt time.Time `json:"last_cycle_at,omitempty"`

	Reference      *ChannelSummary          `json:"reference,omitempty"`
	EmbedReference *embed.WorkloadEmbedding `json:"embed_reference,omitempty"`
	Monitor        *MonitorStatus           `json:"monitor,omitempty"`
}

// ExportState snapshots the loop's spillable state. Safe while the loop
// runs; the snapshot is whatever the last completed cycle left behind.
func (l *Loop) ExportState() *LoopState {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := &LoopState{
		SavedAt:     time.Now().UTC(),
		Cycles:      l.cycles,
		Promotions:  l.promotions,
		Rejections:  l.rejections,
		Rollbacks:   l.rollbacks,
		LastSeen:    l.lastSeen,
		LastCycleAt: l.lastCycleAt,
	}
	if l.reference != nil {
		ref := *l.reference
		st.Reference = &ref
	}
	if l.embedRef != nil {
		ref := *l.embedRef
		st.EmbedReference = &ref
	}
	if l.monitor != nil {
		mon := *l.monitor
		st.Monitor = &mon
	}
	return st
}

// RestoreState reinstates a previously exported snapshot. Call before
// Start; a nil state is a no-op. A restored monitor whose promoted version
// no longer serves stands down harmlessly at the next live check.
func (l *Loop) RestoreState(st *LoopState) {
	if st == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cycles = st.Cycles
	l.promotions = st.Promotions
	l.rejections = st.Rejections
	l.rollbacks = st.Rollbacks
	l.lastSeen = st.LastSeen
	l.lastCycleAt = st.LastCycleAt
	l.reference = st.Reference
	l.embedRef = st.EmbedReference
	l.monitor = st.Monitor
}

// SaveStateFile spills the loop's state to path atomically (temp file +
// rename). An empty path is a no-op.
func (l *Loop) SaveStateFile(path string) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(l.ExportState(), "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".state-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RestoreStateFile restores spilled state from path; a missing file is a
// clean start, a corrupt one an error (the caller decides whether to start
// clean anyway).
func (l *Loop) RestoreStateFile(path string) error {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st LoopState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	l.RestoreState(&st)
	return nil
}
