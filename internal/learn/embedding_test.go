package learn

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/expdata"
	"repro/internal/server/registry"
)

// phaseShift emits templates×5 records whose plan shape (channel masses and
// estimates) moved an order of magnitude — the change a plan encoder sees,
// unlike phaseB's cost inversion which only the measured-cost z-score sees.
func phaseShift(g *gen, templates int) []expdata.PlanRecord {
	var out []expdata.PlanRecord
	for t := 0; t < templates; t++ {
		for _, m := range phaseMasses {
			out = append(out, g.rec(t, m*20, m*20, m*20))
		}
	}
	return out
}

// embedLoopOptions is testLoopOptions with the embedding detector switched
// on and the record/schedule triggers parked out of the way, so drift is
// the only trigger that can fire.
func embedLoopOptions(seed int64, mode string) Options {
	o := testLoopOptions(seed)
	o.DriftMode = mode
	o.RecordThreshold = 100000
	o.EmbedEpochs = 10
	return o
}

// TestDriftVerdictOrderIndependent pins the both-mode combination rule:
// the verdict is the OR of two independently evaluated detectors, so no
// evaluation order can change it, and each mode masks the other detector.
func TestDriftVerdictOrderIndependent(t *testing.T) {
	o := Options{DriftThreshold: 3.0, EmbedDriftThreshold: 0.10, DriftMode: DriftModeBoth}
	cases := []struct {
		z, d           float64
		zValid, dValid bool
		want           bool
		trigger        string
	}{
		{0.5, 0.01, true, true, false, ""},
		{5.0, 0.01, true, true, true, "drift"},
		{0.5, 0.50, true, true, true, "embed-drift"},
		{5.0, 0.50, true, true, true, "drift"}, // both fire: z named deterministically
		{5.0, 0.50, false, false, false, ""},   // neither detector has a reference
	}
	for i, c := range cases {
		fired, trigger := driftVerdict(o, c.z, c.zValid, c.d, c.dValid)
		if fired != c.want || trigger != c.trigger {
			t.Errorf("case %d: verdict = (%v, %q), want (%v, %q)", i, fired, trigger, c.want, c.trigger)
		}
		// The verdict must equal the OR of the single-detector verdicts —
		// the order-independence property, by construction.
		zOnly, _ := driftVerdict(o, c.z, c.zValid, 0, false)
		dOnly, _ := driftVerdict(o, 0, false, c.d, c.dValid)
		if fired != (zOnly || dOnly) {
			t.Errorf("case %d: both-mode verdict %v != OR of detector verdicts (%v, %v)", i, fired, zOnly, dOnly)
		}
	}
	// Mode masking: each pure mode ignores the other detector entirely.
	oz := o
	oz.DriftMode = DriftModeZ
	if fired, _ := driftVerdict(oz, 0.5, true, 0.50, true); fired {
		t.Error("z mode fired on embedding distance")
	}
	oe := o
	oe.DriftMode = DriftModeEmbed
	if fired, _ := driftVerdict(oe, 5.0, true, 0.01, true); fired {
		t.Error("embed mode fired on z score")
	}
}

// TestLoopEmbedDrift drives the embedding detector end to end: a promotion
// trains and versions an encoder and captures the reference embedding, a
// stationary continuation does not fire, and a plan-shape shift does.
func TestLoopEmbedDrift(t *testing.T) {
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sink := &fakeSink{}
	loop := NewLoop(reg, sink.snapshot, 0, embedLoopOptions(7, DriftModeEmbed))
	defer loop.Stop()
	ctx := context.Background()
	g := &gen{}

	// Promotion trains encoder v1 and captures the reference embedding.
	sink.add(phaseA(g, 4)...)
	rep, err := loop.RunCycle(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionPromoted || rep.EncoderVersion != 1 {
		t.Fatalf("cycle 1 = %s (%s), encoder v%d; want promoted with encoder v1", rep.Decision, rep.Reason, rep.EncoderVersion)
	}
	if reg.ActiveEncoder() == nil || reg.ActiveEncoder().ID != 1 {
		t.Fatal("promotion did not activate an encoder")
	}
	st, err := loop.Embedding()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reference == nil || st.Embedding == nil || st.Distance > 1e-9 {
		t.Fatalf("embedding right after promotion: distance %v, want ~0 (status %+v)", st.Distance, st)
	}

	// Stationary continuation: same plan shapes, fresh fingerprints. No
	// trigger may fire.
	sink.add(phaseA(g, 4)...)
	if trig := loop.dueTrigger(); trig != "" {
		t.Fatalf("stationary continuation fired trigger %q", trig)
	}

	// Plan-shape shift: the window fills with 20× heavier plans. The
	// embedding detector must fire (z is masked in embed mode).
	sink.add(phaseShift(g, 4)...)
	if trig := loop.dueTrigger(); trig != "embed-drift" {
		t.Fatalf("shape shift fired trigger %q, want embed-drift", trig)
	}
	rep, err = loop.RunCycle(ctx, "embed-drift")
	if err != nil {
		t.Fatal(err)
	}
	if rep.EmbedDrift <= loop.opts.EmbedDriftThreshold {
		t.Fatalf("cycle report embed drift %v not above threshold %v", rep.EmbedDrift, loop.opts.EmbedDriftThreshold)
	}
}

// TestLoopEmbedDeterministicAcrossParallelism: the whole both-mode cycle
// sequence — including encoder training and embedding drift — is
// bit-identical at any TrainParallelism setting (encoder training is
// strictly serial; the forest is parallelism-invariant by construction).
func TestLoopEmbedDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallel int) ([]CycleReport, *EmbeddingStatus) {
		reg, err := registry.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		sink := &fakeSink{}
		o := embedLoopOptions(99, DriftModeBoth)
		o.TrainParallelism = parallel
		loop := NewLoop(reg, sink.snapshot, 0, o)
		defer loop.Stop()
		g := &gen{}
		ctx := context.Background()
		var reports []CycleReport
		for _, phase := range [][]expdata.PlanRecord{phaseA(g, 4), phaseShift(g, 4)} {
			sink.add(phase...)
			rep, err := loop.RunCycle(ctx, "test")
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, normalizeReport(rep))
		}
		st, err := loop.Embedding()
		if err != nil {
			t.Fatal(err)
		}
		return reports, st
	}
	rep1, st1 := run(1)
	rep8, st8 := run(8)
	if !reflect.DeepEqual(rep1, rep8) {
		t.Fatalf("serial and parallel runs diverged:\nserial:   %+v\nparallel: %+v", rep1, rep8)
	}
	if !reflect.DeepEqual(st1.Embedding.Vector, st8.Embedding.Vector) {
		t.Fatal("workload embeddings differ across parallelism settings")
	}
	if !reflect.DeepEqual(st1.Reference, st8.Reference) {
		t.Fatal("reference embeddings differ across parallelism settings")
	}
}

// TestZModeReportByteIdentical: in the default z mode no embedding field
// may leak into the wire format — the PR 9 report JSON is preserved byte
// for byte.
func TestZModeReportByteIdentical(t *testing.T) {
	reg, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	sink := &fakeSink{}
	loop := NewLoop(reg, sink.snapshot, 0, testLoopOptions(7))
	defer loop.Stop()
	g := &gen{}
	sink.add(phaseA(g, 4)...)
	rep, err := loop.RunCycle(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"embed_drift", "encoder_version"} {
		if strings.Contains(string(data), field) {
			t.Fatalf("z-mode report leaked %q: %s", field, data)
		}
	}
	if loop.opts.DriftMode != DriftModeZ {
		t.Fatalf("default drift mode = %q, want z", loop.opts.DriftMode)
	}
	if _, err := loop.Embedding(); err != ErrNoEncoder {
		t.Fatalf("Embedding in z mode = %v, want ErrNoEncoder", err)
	}
}
