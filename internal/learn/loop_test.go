package learn

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/expdata"
	"repro/internal/feat"
	"repro/internal/models"
	"repro/internal/server/registry"
)

// fakeSink is a slice-backed telemetry source with the sink contract: the
// snapshot's last record has ordinal total−1.
type fakeSink struct {
	mu   sync.Mutex
	recs []expdata.PlanRecord
}

func (f *fakeSink) add(recs ...expdata.PlanRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recs = append(f.recs, recs...)
}

func (f *fakeSink) snapshot() ([]expdata.PlanRecord, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]expdata.PlanRecord(nil), f.recs...), int64(len(f.recs))
}

// testLoopOptions are sized for the synthetic phases (20 records each): a
// window of exactly one phase, low pair floors, quick forests.
func testLoopOptions(seed int64) Options {
	return Options{
		Seed:             seed,
		Trees:            15,
		Window:           20,
		EvalFrac:         0.3,
		MinRecords:       10,
		MinTrainPairs:    8,
		MinEvalPairs:     4,
		RollbackMinPairs: 8,
		RecordThreshold:  8,
	}
}

// TestLoopPromoteMonitorRollback walks the full lifecycle: a first
// challenger promoted with no champion, a second promoted over it when the
// workload inverts, and a rollback to the first when live telemetry shows
// the second was a mistake.
func TestLoopPromoteMonitorRollback(t *testing.T) {
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sink := &fakeSink{}
	loop := NewLoop(reg, sink.snapshot, 0, testLoopOptions(7))
	defer loop.Stop()
	g := &gen{}
	ctx := context.Background()

	// Cycle 1: phase-A telemetry, no champion → promoted on the absolute
	// accuracy floor. No prior exists, so nothing is monitored.
	sink.add(phaseA(g, 4)...)
	rep, err := loop.RunCycle(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionPromoted {
		t.Fatalf("cycle 1 = %s (%s), want promoted", rep.Decision, rep.Reason)
	}
	if rep.ChallengerVersion != 1 || reg.Active() == nil || reg.Active().ID != 1 {
		t.Fatalf("cycle 1 should activate v1 (report %+v)", rep)
	}
	if st := loop.Status(); st.Monitoring != nil {
		t.Fatalf("promotion without a prior must not monitor, got %+v", st.Monitoring)
	}

	// Cycle 2: the workload inverts (phase B fills the window). The v1
	// champion is systematically wrong on the fresh pairs, so the
	// challenger wins the shadow evaluation and v2 is promoted — this time
	// with v1 pinned as the rollback target.
	sink.add(phaseB(g, 4)...)
	rep, err = loop.RunCycle(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionPromoted || rep.ChallengerVersion != 2 {
		t.Fatalf("cycle 2 = %s (%s), want v2 promoted", rep.Decision, rep.Reason)
	}
	if rep.Champion == nil || rep.Challenger == nil || rep.Challenger.Accuracy <= rep.Champion.Accuracy {
		t.Fatalf("cycle 2 shadow eval: champion %+v challenger %+v, want the challenger clearly ahead",
			rep.Champion, rep.Challenger)
	}
	st := loop.Status()
	if st.Monitoring == nil || st.Monitoring.PromotedVersion != 2 || st.Monitoring.PriorVersion != 1 {
		t.Fatalf("cycle 2 must monitor v2 with v1 as rollback target, got %+v", st.Monitoring)
	}
	if st.Monitoring.Watermark != 40 {
		t.Fatalf("watermark = %d, want 40 (records at promotion)", st.Monitoring.Watermark)
	}

	// Cycle 3a: no fresh telemetry yet — the loop must wait, not train a
	// new challenger on top of an unconfirmed promotion.
	rep, err = loop.RunCycle(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionMonitoring {
		t.Fatalf("cycle 3a = %s (%s), want monitoring (awaiting live pairs)", rep.Decision, rep.Reason)
	}

	// Cycle 3b: the workload reverts to phase-A behavior. v2's live
	// accuracy collapses versus its shadow accuracy → roll back to v1.
	sink.add(phaseA(g, 4)...)
	rep, err = loop.RunCycle(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionRolledBack {
		t.Fatalf("cycle 3b = %s (%s), want rolled_back", rep.Decision, rep.Reason)
	}
	if rep.Live == nil || rep.Live.Accuracy >= st.Monitoring.ShadowAccuracy {
		t.Fatalf("rollback must be driven by degraded live accuracy, got %+v", rep.Live)
	}
	if act := reg.Active(); act == nil || act.ID != 1 {
		t.Fatalf("active after rollback = %v, want v1 restored", act)
	}
	final := loop.Status()
	if final.Promotions != 2 || final.Rollbacks != 1 || final.Monitoring != nil {
		t.Fatalf("final status = %+v, want 2 promotions, 1 rollback, no monitoring", final)
	}
}

// TestLoopRejectsBadChallenger drives the rejection path through the
// training seam: a deliberately mislabeled challenger must fail the shadow
// evaluation and never touch the registry.
func TestLoopRejectsBadChallenger(t *testing.T) {
	reg, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	sink := &fakeSink{}
	loop := NewLoop(reg, sink.snapshot, 0, testLoopOptions(7))
	defer loop.Stop()
	loop.trainFn = func(X [][]float64, y []int, seed int64) (*models.Classifier, error) {
		wrong := make([]int, len(y))
		for i := range y {
			wrong[i] = (y[i] + 1) % expdata.NumLabels
		}
		clf := models.NewClassifier(feat.Default(), models.RF(5, seed), expdata.DefaultAlpha)
		if err := clf.TrainVectors(X, wrong); err != nil {
			return nil, err
		}
		return clf, nil
	}
	g := &gen{}
	sink.add(phaseA(g, 4)...)
	rep, err := loop.RunCycle(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionRejected {
		t.Fatalf("decision = %s (%s), want the mislabeled challenger rejected", rep.Decision, rep.Reason)
	}
	if len(reg.List()) != 0 || reg.Active() != nil {
		t.Fatal("rejected challenger leaked into the registry")
	}
	if st := loop.Status(); st.Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", st.Rejections)
	}
}

// TestLoopSkipsThinTelemetry: below the record floor a cycle reports
// skipped without training.
func TestLoopSkipsThinTelemetry(t *testing.T) {
	reg, _ := registry.Open("")
	sink := &fakeSink{}
	loop := NewLoop(reg, sink.snapshot, 0, testLoopOptions(7))
	defer loop.Stop()
	g := &gen{}
	sink.add(g.rec(0, 100, 100, 100), g.rec(0, 200, 200, 200))
	rep, err := loop.RunCycle(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionSkipped {
		t.Fatalf("decision = %s, want skipped on thin telemetry", rep.Decision)
	}
}

// TestLoopSerializesCycles: TriggerAsync holds a single-flight slot.
func TestLoopSerializesCycles(t *testing.T) {
	reg, _ := registry.Open("")
	sink := &fakeSink{}
	loop := NewLoop(reg, sink.snapshot, 0, testLoopOptions(7))
	defer loop.Stop()
	g := &gen{}
	sink.add(phaseA(g, 4)...)
	// Slow the cycle down via the training seam so the second trigger
	// reliably observes the first in flight.
	release := make(chan struct{})
	started := make(chan struct{})
	inner := loop.trainFn
	loop.trainFn = func(X [][]float64, y []int, seed int64) (*models.Classifier, error) {
		close(started)
		<-release
		return inner(X, y, seed)
	}
	if err := loop.TriggerAsync("first"); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := loop.TriggerAsync("second"); err != ErrCycleRunning {
		t.Fatalf("second trigger = %v, want ErrCycleRunning", err)
	}
	close(release)
	deadline := time.After(30 * time.Second)
	for loop.Status().State != "idle" {
		select {
		case <-deadline:
			t.Fatal("cycle never finished")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if st := loop.Status(); st.Cycles != 1 || st.Promotions != 1 {
		t.Fatalf("status = %+v, want exactly one completed cycle", st)
	}
}

// normalizeReport strips wall-clock fields so two runs can be compared
// structurally.
func normalizeReport(r *CycleReport) CycleReport {
	c := *r
	c.StartedAt, c.FinishedAt = time.Time{}, time.Time{}
	c.TrainSeconds, c.FeaturizeSeconds, c.EvalSeconds = 0, 0, 0
	return c
}

// TestLoopDeterministic pins the promotion decisions: two loops fed the
// same telemetry under the same seed make byte-identical choices — the
// property the paper's offline/online parity argument rests on.
func TestLoopDeterministic(t *testing.T) {
	run := func() []CycleReport {
		reg, err := registry.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		sink := &fakeSink{}
		loop := NewLoop(reg, sink.snapshot, 0, testLoopOptions(99))
		defer loop.Stop()
		g := &gen{}
		ctx := context.Background()
		var reports []CycleReport
		for _, phase := range [][]expdata.PlanRecord{phaseA(g, 4), phaseB(g, 4), phaseA(g, 4)} {
			sink.add(phase...)
			rep, err := loop.RunCycle(ctx, "test")
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, normalizeReport(rep))
		}
		return reports
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two identical runs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	// The sequence itself must be the promote → promote → rollback arc.
	wantDecisions := []string{DecisionPromoted, DecisionPromoted, DecisionRolledBack}
	for i, rep := range first {
		if rep.Decision != wantDecisions[i] {
			t.Fatalf("cycle %d decision = %s (%s), want %s", i+1, rep.Decision, rep.Reason, wantDecisions[i])
		}
	}
}

// TestRunOnce exercises the registry-free facade path.
func TestRunOnce(t *testing.T) {
	g := &gen{}
	recs := phaseA(g, 4)
	rep, clf, err := RunOnce(recs, nil, Options{Seed: 3, Trees: 15, MinTrainPairs: 8, MinEvalPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != DecisionPromoted || clf == nil {
		t.Fatalf("RunOnce = %s (%s), clf=%v; want a promoted challenger", rep.Decision, rep.Reason, clf != nil)
	}
	// The promoted challenger, used as champion on the same data, should
	// now be hard to beat — the margin gate rejects a tied rematch.
	rep2, clf2, err := RunOnce(recs, clf, Options{Seed: 3, Trees: 15, MinTrainPairs: 8, MinEvalPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Decision != DecisionRejected || clf2 != nil {
		t.Fatalf("rematch = %s (%s), want rejected (no margin over an identical champion)", rep2.Decision, rep2.Reason)
	}
}
