// Package candidates generates syntactic candidate indexes for queries —
// the first phase of a Chaudhuri–Narasayya-style index tuner, shared by the
// tuner's search and by the execution-data collector (which explores
// subsets of tuner recommendations, §7.3).
//
// Generation follows the TiDB index-advisor recipe: each query's columns
// are classified per table into EQ / JOIN / RANGE / ORDER / REF roles, and
// multi-column keys are enumerated under the leftmost-prefix rules —
// equality columns (in any prefix order), then at most one range column,
// then order columns — with covering variants carrying the remaining
// referenced columns. Output is bounded by per-table budgets (max key
// width, max key fraction of table columns, max candidates per table)
// instead of a flat per-query cap; everything a budget drops is counted on
// the candidates.dropped metric, per the no-silent-caps convention.
package candidates

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"

	"repro/internal/engine/catalog"
	"repro/internal/engine/query"
	"repro/internal/obs"
)

var (
	mGenerated = obs.C("candidates.generated")
	mDropped   = obs.C("candidates.dropped")
)

// Roles classifies the columns one query touches on one table. A column
// appears in exactly one role slice; equality wins over range when a column
// carries both predicate shapes (`a = 5 AND a < 10` pins a to one value, so
// the range adds nothing to the key).
type Roles struct {
	Table string
	// EQ are columns with an equality predicate.
	EQ []string
	// Range are columns with only non-equality predicates.
	Range []string
	// Join are equijoin columns (that are not EQ or Range columns).
	Join []string
	// Order are GROUP BY then ORDER BY columns not already classified.
	Order []string
	// Ref are the remaining referenced columns (projection / aggregation
	// inputs); they only ever appear as included columns.
	Ref []string
}

// has reports whether the column already holds a stronger role.
func (r *Roles) has(c string) bool {
	return contains(r.EQ, c) || contains(r.Range, c) || contains(r.Join, c) || contains(r.Order, c)
}

// Classify splits the columns the query uses on one table into roles.
// Precedence is EQ > Range > Join > Order > Ref: a join column that also
// carries an equality predicate classifies as EQ (the seek through the
// equality is at least as strong as the join lookup), which is what makes
// key construction duplicate-free by construction.
func Classify(q *query.Query, table string) Roles {
	r := Roles{Table: table}
	for _, p := range q.PredsOn(table) {
		if p.IsEquality() {
			r.EQ = appendUnique(r.EQ, p.Column)
		}
	}
	for _, p := range q.PredsOn(table) {
		if !p.IsEquality() && !contains(r.EQ, p.Column) {
			r.Range = appendUnique(r.Range, p.Column)
		}
	}
	for _, j := range q.JoinsOn(table) {
		if c := j.ColumnFor(table); c != "" && !contains(r.EQ, c) && !contains(r.Range, c) {
			r.Join = appendUnique(r.Join, c)
		}
	}
	for _, c := range q.GroupBy {
		if c.Table == table && !r.has(c.Column) {
			r.Order = appendUnique(r.Order, c.Column)
		}
	}
	for _, c := range q.OrderBy {
		if c.Table == table && !r.has(c.Column) {
			r.Order = appendUnique(r.Order, c.Column)
		}
	}
	for _, c := range q.ColumnsUsed(table) {
		if !r.has(c) {
			r.Ref = append(r.Ref, c)
		}
	}
	return r
}

// Limits bound candidate generation per table. The zero value of any field
// falls back to the DefaultLimits value, so Limits{} means "defaults".
type Limits struct {
	// MaxKeyColumns caps the key width of generated indexes.
	MaxKeyColumns int
	// MaxKeyFraction additionally caps the key width at
	// ceil(fraction × table columns), so narrow tables get narrow keys
	// (the %-of-columns budget of the index-tuning literature).
	MaxKeyFraction float64
	// MaxPerTable caps the candidates generated per table per query.
	// Excess candidates are dropped in enumeration order (composites are
	// enumerated first, so budgets shed singles and covering variants
	// before multi-column keys) and counted on candidates.dropped.
	MaxPerTable int
}

// DefaultLimits returns the default generation budgets: keys of at most 3
// columns, at most half a table's columns per key, 16 candidates per table.
func DefaultLimits() Limits {
	return Limits{MaxKeyColumns: 3, MaxKeyFraction: 0.5, MaxPerTable: 16}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxKeyColumns <= 0 {
		l.MaxKeyColumns = d.MaxKeyColumns
	}
	if l.MaxKeyFraction <= 0 {
		l.MaxKeyFraction = d.MaxKeyFraction
	}
	if l.MaxPerTable <= 0 {
		l.MaxPerTable = d.MaxPerTable
	}
	return l
}

// keyWidth returns the effective key-width cap for a table with the given
// column count (always at least 1).
func (l Limits) keyWidth(tableCols int) int {
	w := l.MaxKeyColumns
	if frac := int(math.Ceil(l.MaxKeyFraction * float64(tableCols))); frac < w {
		w = frac
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CandidateIndexes generates syntactic candidate indexes for one query
// under DefaultLimits. See Generate.
func CandidateIndexes(q *query.Query, schema *catalog.Schema) []*catalog.Index {
	return Generate(q, schema, Limits{})
}

// Generate produces the candidate indexes for one query under the given
// budgets: role-classified multi-column keys respecting the prefix rules
// (equalities in any leading order, then at most one range column, then
// order columns), order-first keys for sort/group access, join-lookup keys,
// covering variants with included columns, single-column keys, and a
// columnstore candidate for aggregation-heavy scans of large tables.
// Results are deduplicated, budgeted per table, and ordered biggest table
// first (where indexing matters most), then by ID.
func Generate(q *query.Query, schema *catalog.Schema, lim Limits) []*catalog.Index {
	lim = lim.withDefaults()
	var out []*catalog.Index
	var dropped int64

	for _, table := range q.Tables {
		meta := schema.Table(table)
		if meta == nil {
			continue
		}
		g := &tableGen{
			table: table,
			maxW:  lim.keyWidth(len(meta.Columns)),
			cap:   lim.MaxPerTable,
			used:  q.ColumnsUsed(table),
			seen:  map[string]bool{},
		}
		r := Classify(q, table)
		eq, rng, joins, ord := r.EQ, r.Range, r.Join, r.Order

		// Equality-led composites: each equality column leads once (the
		// optimizer can seek any prefix ordering of the equalities), then at
		// most one range column, then the order columns. Covering variants
		// are emitted for the canonical (predicate) order only.
		rots := 1
		if len(eq) > 1 {
			rots = len(eq)
		}
		for k := 0; k < rots; k++ {
			ek := rotate(eq, k)
			canon := k == 0
			if len(ek) > 0 {
				g.emit(canon, ek)
			}
			for _, rc := range rng {
				g.emit(canon, ek, []string{rc})
			}
			if canon && len(ord) > 0 {
				g.emit(true, ek, ord)
				for _, rc := range rng {
					g.emit(true, ek, []string{rc}, ord)
				}
			}
		}
		// Order-first keys: scanning the index in key order satisfies the
		// sort/group; trailing equalities still narrow residual filtering
		// and widen covering.
		if len(ord) > 0 {
			g.emit(true, ord)
			if len(eq) > 0 {
				g.emit(false, ord, eq)
			}
		}
		// Join-lookup keys (index nested-loop joins), optionally extended
		// with the equality columns as pushed filters. Building through
		// emit dedups a join column that reappears as an equality column.
		for _, jc := range joins {
			g.emit(true, []string{jc})
			if len(eq) > 0 {
				g.emit(false, []string{jc}, eq)
			}
		}
		// Single-column fallbacks on every seekable role column.
		for _, c := range eq {
			g.emit(false, []string{c})
		}
		for _, c := range rng {
			g.emit(false, []string{c})
		}
		if len(ord) > 0 {
			g.emit(false, ord[:1])
		}
		// Columnstore candidate for aggregate scans over wider tables.
		if len(q.Aggs) > 0 && len(g.used) >= 2 && meta.Rows >= 1000 {
			g.add(&catalog.Index{Table: table, Kind: catalog.Columnstore})
		}
		out = append(out, g.out...)
		dropped += int64(g.dropped)
	}

	// Deterministic order: prefer candidates on bigger tables (where
	// indexing matters most), breaking ties by ID.
	slices.SortStableFunc(out, func(a, b *catalog.Index) int {
		if c := cmp.Compare(tableRows(schema, b.Table), tableRows(schema, a.Table)); c != 0 {
			return c
		}
		return strings.Compare(a.ID(), b.ID())
	})
	mGenerated.Add(int64(len(out)))
	mDropped.Add(dropped)
	return out
}

// tableGen accumulates one table's candidates under the per-table budget.
type tableGen struct {
	table   string
	maxW    int
	cap     int
	used    []string
	out     []*catalog.Index
	seen    map[string]bool
	dropped int
}

// emit builds a key by concatenating blocks, deduplicating columns and
// trimming at the key-width budget, and adds the resulting index — plus a
// covering variant carrying the remaining used columns when withCovering.
func (g *tableGen) emit(withCovering bool, blocks ...[]string) {
	key := buildKey(g.maxW, blocks...)
	if len(key) == 0 {
		return
	}
	g.add(&catalog.Index{Table: g.table, KeyColumns: key})
	if withCovering {
		if inc := subtract(g.used, key); len(inc) > 0 {
			g.add(&catalog.Index{Table: g.table, KeyColumns: key, IncludedColumns: inc})
		}
	}
}

func (g *tableGen) add(ix *catalog.Index) {
	if err := ix.Validate(); err != nil {
		// A malformed candidate is a generator bug; fail at the source
		// rather than inside the what-if planner (as catalog.AddTable does
		// for schema bugs).
		panic(fmt.Sprintf("candidates: generated invalid index: %v", err))
	}
	id := ix.ID()
	if g.seen[id] {
		return
	}
	g.seen[id] = true
	if len(g.out) >= g.cap {
		g.dropped++
		return
	}
	g.out = append(g.out, ix)
}

// buildKey concatenates column blocks into one key, skipping duplicates and
// trimming at the width budget.
func buildKey(maxW int, blocks ...[]string) []string {
	var key []string
	for _, b := range blocks {
		for _, c := range b {
			if len(key) >= maxW {
				return key
			}
			if !contains(key, c) {
				key = append(key, c)
			}
		}
	}
	return key
}

// rotate returns xs rotated left by k (a copy when k > 0).
func rotate(xs []string, k int) []string {
	if k == 0 || len(xs) < 2 {
		return xs
	}
	out := make([]string, 0, len(xs))
	out = append(out, xs[k:]...)
	return append(out, xs[:k]...)
}

func tableRows(s *catalog.Schema, table string) int64 {
	if t := s.Table(table); t != nil {
		return t.Rows
	}
	return 0
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func appendUnique(xs []string, x string) []string {
	if contains(xs, x) {
		return xs
	}
	return append(xs, x)
}

// subtract returns the elements of a not present in b, preserving order.
func subtract(a, b []string) []string {
	var out []string
	for _, x := range a {
		if !contains(b, x) {
			out = append(out, x)
		}
	}
	return out
}
