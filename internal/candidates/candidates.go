// Package candidates generates syntactic candidate indexes for queries —
// the first phase of a Chaudhuri–Narasayya-style index tuner, shared by the
// tuner's search and by the execution-data collector (which explores
// subsets of tuner recommendations, §7.3).
package candidates

import (
	"sort"

	"repro/internal/engine/catalog"
	"repro/internal/engine/query"
)

// MaxCandidatesPerQuery caps the syntactic candidates generated per query.
const MaxCandidatesPerQuery = 8

// CandidateIndexes generates syntactic candidate indexes for one query:
// single-column indexes on equality/range/join columns, multi-column
// indexes ordered equalities-then-range, covering variants with included
// columns, and a columnstore candidate for aggregation-heavy fact access.
// Results are deduplicated and capped at MaxCandidatesPerQuery.
func CandidateIndexes(q *query.Query, schema *catalog.Schema) []*catalog.Index {
	var out []*catalog.Index
	seen := map[string]bool{}
	add := func(ix *catalog.Index) {
		if ix == nil {
			return
		}
		id := ix.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, ix)
		}
	}

	for _, table := range q.Tables {
		meta := schema.Table(table)
		if meta == nil {
			continue
		}
		var eqCols, rangeCols, joinCols []string
		for _, p := range q.PredsOn(table) {
			if p.IsEquality() {
				eqCols = appendUnique(eqCols, p.Column)
			} else {
				rangeCols = appendUnique(rangeCols, p.Column)
			}
		}
		for _, j := range q.JoinsOn(table) {
			joinCols = appendUnique(joinCols, j.ColumnFor(table))
		}
		used := q.ColumnsUsed(table)

		// Multi-column key: equalities first, then the first range column.
		var key []string
		key = append(key, eqCols...)
		if len(rangeCols) > 0 {
			key = append(key, rangeCols[0])
		}
		if len(key) > 0 {
			add(&catalog.Index{Table: table, KeyColumns: key})
			// Covering variant including all remaining used columns.
			if inc := subtract(used, key); len(inc) > 0 {
				add(&catalog.Index{Table: table, KeyColumns: key, IncludedColumns: inc})
			}
		}
		// Per-column candidates on predicates.
		for _, c := range append(append([]string{}, eqCols...), rangeCols...) {
			add(&catalog.Index{Table: table, KeyColumns: []string{c}})
		}
		// Join-column candidates, with a covering variant.
		for _, c := range joinCols {
			add(&catalog.Index{Table: table, KeyColumns: []string{c}})
			if inc := subtract(used, []string{c}); len(inc) > 0 {
				add(&catalog.Index{Table: table, KeyColumns: []string{c}, IncludedColumns: inc})
			}
		}
		// Join column + predicate key (index NLJ with pushed filter).
		if len(joinCols) > 0 && len(eqCols) > 0 {
			add(&catalog.Index{Table: table, KeyColumns: append([]string{joinCols[0]}, eqCols[0])})
		}
		// Columnstore candidate for aggregate scans over wider tables.
		if len(q.Aggs) > 0 && len(used) >= 2 && meta.Rows >= 1000 {
			add(&catalog.Index{Table: table, Kind: catalog.Columnstore})
		}
	}

	// Deterministic order, then cap: prefer candidates on bigger tables
	// (where indexing matters most), breaking ties by ID.
	sort.SliceStable(out, func(i, j int) bool {
		ri := tableRows(schema, out[i].Table)
		rj := tableRows(schema, out[j].Table)
		if ri != rj {
			return ri > rj
		}
		return out[i].ID() < out[j].ID()
	})
	if len(out) > MaxCandidatesPerQuery {
		out = out[:MaxCandidatesPerQuery]
	}
	return out
}

func tableRows(s *catalog.Schema, table string) int64 {
	if t := s.Table(table); t != nil {
		return t.Rows
	}
	return 0
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// subtract returns the elements of a not present in b, preserving order.
func subtract(a, b []string) []string {
	var out []string
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}
