package candidates

import (
	"fmt"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/query"
	"repro/internal/util"
)

// TestGeneratePropertyInvariants drives randomized queries and budgets
// through Generate and checks the structural invariants every candidate
// must satisfy: validity (no repeated key or included columns), the
// key-width and per-table budgets, the prefix rules (key columns are role
// columns the query uses; at most one range column per key; no equality
// column after the range column), and determinism.
func TestGeneratePropertyInvariants(t *testing.T) {
	s := catalog.NewSchema("prop")
	t0cols := make([]catalog.Column, 8)
	for i := range t0cols {
		t0cols[i] = catalog.Column{Name: fmt.Sprintf("c%d", i)}
	}
	t1cols := make([]catalog.Column, 4)
	for i := range t1cols {
		t1cols[i] = catalog.Column{Name: fmt.Sprintf("d%d", i)}
	}
	s.AddTable(&catalog.Table{Name: "t0", Rows: 10000, Columns: t0cols})
	s.AddTable(&catalog.Table{Name: "t1", Rows: 500, Columns: t1cols})

	rng := util.NewRNG(42)
	for iter := 0; iter < 300; iter++ {
		q := randomQuery(rng.SplitInt(iter), iter)
		lim := Limits{
			MaxKeyColumns:  1 + rng.Intn(4),
			MaxKeyFraction: []float64{0.25, 0.5, 1.0}[rng.Intn(3)],
			MaxPerTable:    2 + rng.Intn(18),
		}
		cands := Generate(q, s, lim)
		again := Generate(q, s, lim)
		if len(again) != len(cands) {
			t.Fatalf("iter %d: non-deterministic candidate count", iter)
		}
		perTable := map[string]int{}
		for i, ix := range cands {
			if again[i].ID() != ix.ID() {
				t.Fatalf("iter %d: non-deterministic order at %d: %s vs %s", iter, i, ix.ID(), again[i].ID())
			}
			if err := ix.Validate(); err != nil {
				t.Fatalf("iter %d: invalid candidate: %v", iter, err)
			}
			perTable[ix.Table]++
			if ix.Kind == catalog.Columnstore {
				continue
			}
			meta := s.Table(ix.Table)
			if w := lim.withDefaults().keyWidth(len(meta.Columns)); len(ix.KeyColumns) > w {
				t.Fatalf("iter %d: key width %d exceeds budget %d: %s", iter, len(ix.KeyColumns), w, ix.ID())
			}
			roles := Classify(q, ix.Table)
			used := q.ColumnsUsed(ix.Table)
			rangeAt := -1
			for pos, c := range ix.KeyColumns {
				if !contains(used, c) {
					t.Fatalf("iter %d: key column %q not used by query: %s", iter, c, ix.ID())
				}
				if contains(roles.Ref, c) {
					t.Fatalf("iter %d: pure-Ref column %q in key: %s", iter, c, ix.ID())
				}
				if contains(roles.Range, c) {
					if rangeAt >= 0 {
						t.Fatalf("iter %d: two range columns in key: %s", iter, ix.ID())
					}
					rangeAt = pos
				}
				if rangeAt >= 0 && pos > rangeAt && contains(roles.EQ, c) {
					t.Fatalf("iter %d: equality column %q after range column: %s", iter, c, ix.ID())
				}
			}
			for _, c := range ix.IncludedColumns {
				if !contains(used, c) {
					t.Fatalf("iter %d: included column %q not used by query: %s", iter, c, ix.ID())
				}
			}
		}
		for table, n := range perTable {
			if n > lim.MaxPerTable {
				t.Fatalf("iter %d: %d candidates on %s exceed budget %d", iter, n, table, lim.MaxPerTable)
			}
		}
	}
}

// randomQuery builds a random but well-formed one- or two-table query:
// random equality/range predicates (sometimes both shapes on one column),
// optional join, group-by, order-by, projection, and aggregates.
func randomQuery(rng *util.RNG, iter int) *query.Query {
	pick := func(table string, n int) query.ColRef {
		prefix := "c"
		if table == "t1" {
			prefix = "d"
		}
		return query.ColRef{Table: table, Column: fmt.Sprintf("%s%d", prefix, rng.Intn(n))}
	}
	cols := func(table string) int {
		if table == "t1" {
			return 4
		}
		return 8
	}
	q := &query.Query{Name: fmt.Sprintf("rand%d", iter), Tables: []string{"t0"}}
	twoTables := rng.Intn(3) == 0
	if twoTables {
		q.Tables = append(q.Tables, "t1")
		q.Joins = []query.Join{{LeftTable: "t0", LeftColumn: "c1", RightTable: "t1", RightColumn: "d0"}}
	}
	for _, table := range q.Tables {
		for i, n := 0, rng.Intn(4); i < n; i++ {
			c := pick(table, cols(table))
			switch rng.Intn(3) {
			case 0: // equality
				v := rng.Int64Range(0, 99)
				q.Preds = append(q.Preds, query.Pred{Table: table, Column: c.Column, Lo: v, Hi: v})
			case 1: // closed range
				lo := rng.Int64Range(0, 50)
				q.Preds = append(q.Preds, query.Pred{Table: table, Column: c.Column, Lo: lo, Hi: lo + rng.Int64Range(1, 40)})
			default: // half-open range
				q.Preds = append(q.Preds, query.Pred{Table: table, Column: c.Column, Lo: query.NoLo, Hi: rng.Int64Range(0, 99)})
			}
		}
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		q.GroupBy = append(q.GroupBy, pick("t0", 8))
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		q.OrderBy = append(q.OrderBy, pick("t0", 8))
	}
	if len(q.GroupBy) > 0 || rng.Intn(2) == 0 {
		q.Aggs = append(q.Aggs, query.Agg{Func: query.Sum, Col: pick("t0", 8)})
	} else {
		q.Select = append(q.Select, pick("t0", 8))
	}
	return q
}
