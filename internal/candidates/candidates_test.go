package candidates

import (
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/query"
	"repro/internal/obs"
)

func schema() *catalog.Schema {
	s := catalog.NewSchema("db")
	s.AddTable(&catalog.Table{Name: "fact", Rows: 50000, Columns: []catalog.Column{
		{Name: "id"}, {Name: "fk"}, {Name: "a"}, {Name: "b"}, {Name: "v"},
	}})
	s.AddTable(&catalog.Table{Name: "dim", Rows: 500, Columns: []catalog.Column{
		{Name: "d_id"}, {Name: "d_cat"},
	}})
	return s
}

func ids(ixs []*catalog.Index) map[string]bool {
	out := map[string]bool{}
	for _, ix := range ixs {
		out[ix.ID()] = true
	}
	return out
}

func TestEqualityThenRangeKeyOrder(t *testing.T) {
	q := &query.Query{
		Name:   "q",
		Tables: []string{"fact"},
		Preds: []query.Pred{
			{Table: "fact", Column: "a", Lo: 0, Hi: 100}, // range
			{Table: "fact", Column: "b", Lo: 5, Hi: 5},   // equality
		},
		Select: []query.ColRef{{Table: "fact", Column: "v"}},
	}
	got := ids(CandidateIndexes(q, schema()))
	// The multi-column key must put the equality first, range second.
	if !got["fact/bt(b,a)"] {
		t.Fatalf("missing eq-then-range key; got %v", got)
	}
	// Covering variant includes the remaining used column.
	if !got["fact/bt(b,a)+(v)"] {
		t.Fatalf("missing covering variant; got %v", got)
	}
	// Per-column candidates.
	if !got["fact/bt(a)"] || !got["fact/bt(b)"] {
		t.Fatalf("missing single-column candidates; got %v", got)
	}
}

func TestJoinColumnCandidates(t *testing.T) {
	q := &query.Query{
		Name:   "q",
		Tables: []string{"fact", "dim"},
		Joins:  []query.Join{{LeftTable: "fact", LeftColumn: "fk", RightTable: "dim", RightColumn: "d_id"}},
		Preds:  []query.Pred{{Table: "fact", Column: "b", Lo: 1, Hi: 1}},
		Select: []query.ColRef{{Table: "fact", Column: "v"}},
	}
	got := ids(CandidateIndexes(q, schema()))
	if !got["fact/bt(fk)"] {
		t.Fatalf("missing join-column candidate; got %v", got)
	}
	// Join column + equality predicate composite (index NLJ with filter).
	if !got["fact/bt(fk,b)"] {
		t.Fatalf("missing join+eq composite; got %v", got)
	}
}

func TestColumnstoreCandidateForAggregates(t *testing.T) {
	agg := &query.Query{
		Name:    "agg",
		Tables:  []string{"fact"},
		GroupBy: []query.ColRef{{Table: "fact", Column: "a"}},
		Aggs:    []query.Agg{{Func: query.Sum, Col: query.ColRef{Table: "fact", Column: "v"}}},
	}
	if !ids(CandidateIndexes(agg, schema()))["fact/cs"] {
		t.Fatal("aggregate query on a big table should get a columnstore candidate")
	}
	// Small tables do not.
	aggDim := &query.Query{
		Name:    "aggdim",
		Tables:  []string{"dim"},
		GroupBy: []query.ColRef{{Table: "dim", Column: "d_cat"}},
		Aggs:    []query.Agg{{Func: query.Count}},
	}
	if ids(CandidateIndexes(aggDim, schema()))["dim/cs"] {
		t.Fatal("500-row table should not get a columnstore candidate")
	}
}

func TestPerTableBudgetAndBigTablePriority(t *testing.T) {
	q := &query.Query{
		Name:   "wide",
		Tables: []string{"fact", "dim"},
		Preds: []query.Pred{
			{Table: "fact", Column: "a", Lo: 1, Hi: 1},
			{Table: "fact", Column: "b", Lo: 1, Hi: 9},
			{Table: "fact", Column: "v", Lo: 1, Hi: 9},
			{Table: "dim", Column: "d_cat", Lo: 1, Hi: 1},
		},
		Joins:   []query.Join{{LeftTable: "fact", LeftColumn: "fk", RightTable: "dim", RightColumn: "d_id"}},
		GroupBy: []query.ColRef{{Table: "dim", Column: "d_cat"}},
		Aggs:    []query.Agg{{Func: query.Count}},
	}
	lim := Limits{MaxPerTable: 3}
	cands := Generate(q, schema(), lim)
	perTable := map[string]int{}
	for _, ix := range cands {
		perTable[ix.Table]++
	}
	for table, n := range perTable {
		if n > lim.MaxPerTable {
			t.Fatalf("per-table budget exceeded on %s: %d > %d", table, n, lim.MaxPerTable)
		}
	}
	// Candidates on the 50k-row fact table must come first.
	if cands[0].Table != "fact" {
		t.Fatalf("big-table candidates should lead: %v", cands[0].ID())
	}
	// Composites are enumerated before fallback singles, so even a tight
	// budget keeps at least one multi-column key on the fact table.
	var composite bool
	for _, ix := range cands {
		if ix.Table == "fact" && len(ix.KeyColumns) >= 2 {
			composite = true
		}
	}
	if !composite {
		t.Fatalf("budgets should keep composites; got %v", ids(cands))
	}
}

// Regression (bug 1): a column carrying both an equality and a range
// predicate must not be emitted twice in one key. The seed generator built
// key = eqCols + rangeCols[0] without cross-list dedup, yielding bt(a,a).
func TestEqAndRangeOnSameColumnNotDuplicated(t *testing.T) {
	q := &query.Query{
		Name:   "dupkey",
		Tables: []string{"fact"},
		Preds: []query.Pred{
			{Table: "fact", Column: "a", Lo: 5, Hi: 5},           // a = 5
			{Table: "fact", Column: "a", Lo: query.NoLo, Hi: 9},  // a < 10
			{Table: "fact", Column: "b", Lo: 0, Hi: 100},         // range keeps rangeCols non-empty
		},
		Select: []query.ColRef{{Table: "fact", Column: "v"}},
	}
	cands := CandidateIndexes(q, schema())
	for _, ix := range cands {
		if err := ix.Validate(); err != nil {
			t.Fatalf("malformed candidate %s: %v", ix.ID(), err)
		}
	}
	got := ids(cands)
	if got["fact/bt(a,a)"] {
		t.Fatal("eq+range column duplicated in key")
	}
	if !got["fact/bt(a,b)"] {
		t.Fatalf("missing eq-then-range composite; got %v", got)
	}
}

// Regression (bug 2): a join column that also carries an equality predicate
// must not be duplicated in the join+equality composite. The seed generator
// built append([]string{joinCols[0]}, eqCols[0]), yielding bt(fk,fk).
func TestJoinColumnAlsoEqualityNotDuplicated(t *testing.T) {
	q := &query.Query{
		Name:   "jointeq",
		Tables: []string{"fact", "dim"},
		Joins:  []query.Join{{LeftTable: "fact", LeftColumn: "fk", RightTable: "dim", RightColumn: "d_id"}},
		Preds:  []query.Pred{{Table: "fact", Column: "fk", Lo: 7, Hi: 7}},
		Select: []query.ColRef{{Table: "fact", Column: "v"}},
	}
	cands := CandidateIndexes(q, schema())
	for _, ix := range cands {
		if err := ix.Validate(); err != nil {
			t.Fatalf("malformed candidate %s: %v", ix.ID(), err)
		}
	}
	got := ids(cands)
	if got["fact/bt(fk,fk)"] {
		t.Fatal("join column duplicated with its equality predicate")
	}
	if !got["fact/bt(fk)"] {
		t.Fatalf("missing join/equality single; got %v", got)
	}
}

func TestClassifyRoles(t *testing.T) {
	q := &query.Query{
		Name:   "roles",
		Tables: []string{"fact", "dim"},
		Preds: []query.Pred{
			{Table: "fact", Column: "a", Lo: 3, Hi: 3},  // EQ
			{Table: "fact", Column: "a", Lo: 0, Hi: 9},  // range on an EQ column: absorbed
			{Table: "fact", Column: "b", Lo: 0, Hi: 50}, // Range
		},
		Joins:   []query.Join{{LeftTable: "fact", LeftColumn: "fk", RightTable: "dim", RightColumn: "d_id"}},
		Select:  []query.ColRef{{Table: "fact", Column: "v"}},
		OrderBy: []query.ColRef{{Table: "fact", Column: "id"}},
	}
	r := Classify(q, "fact")
	check := func(name string, got, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: got %v want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: got %v want %v", name, got, want)
			}
		}
	}
	check("EQ", r.EQ, []string{"a"})
	check("Range", r.Range, []string{"b"})
	check("Join", r.Join, []string{"fk"})
	check("Order", r.Order, []string{"id"})
	check("Ref", r.Ref, []string{"v"})
}

func TestOrderByAndGroupByProduceCandidates(t *testing.T) {
	q := &query.Query{
		Name:    "ord",
		Tables:  []string{"fact"},
		Preds:   []query.Pred{{Table: "fact", Column: "a", Lo: 1, Hi: 1}},
		Select:  []query.ColRef{{Table: "fact", Column: "v"}},
		OrderBy: []query.ColRef{{Table: "fact", Column: "b"}},
	}
	got := ids(CandidateIndexes(q, schema()))
	// Equality then order column — the (eq..., sort) composite the seed
	// generator could never produce.
	if !got["fact/bt(a,b)"] {
		t.Fatalf("missing eq-then-order composite; got %v", got)
	}
	// Order-first key for a sort-driven scan.
	if !got["fact/bt(b)"] {
		t.Fatalf("missing order-first key; got %v", got)
	}
}

func TestDroppedCounterOnBudget(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	q := &query.Query{
		Name:   "rich",
		Tables: []string{"fact"},
		Preds: []query.Pred{
			{Table: "fact", Column: "a", Lo: 1, Hi: 1},
			{Table: "fact", Column: "b", Lo: 2, Hi: 2},
			{Table: "fact", Column: "v", Lo: 0, Hi: 9},
		},
		Select:  []query.ColRef{{Table: "fact", Column: "id"}},
		OrderBy: []query.ColRef{{Table: "fact", Column: "id"}},
	}
	before := mDropped.Value()
	full := Generate(q, schema(), Limits{MaxPerTable: 100})
	if got := mDropped.Value(); got != before {
		t.Fatalf("nothing should be dropped without budget pressure (dropped %d)", got-before)
	}
	capN := 2
	capped := Generate(q, schema(), Limits{MaxPerTable: capN})
	if len(capped) != capN {
		t.Fatalf("expected %d capped candidates, got %d", capN, len(capped))
	}
	want := int64(len(full) - capN)
	if got := mDropped.Value() - before; got != want {
		t.Fatalf("dropped counter: got %d want %d", got, want)
	}
}

func TestNoCandidatesForBareSelect(t *testing.T) {
	q := &query.Query{
		Name:   "bare",
		Tables: []string{"dim"},
		Select: []query.ColRef{{Table: "dim", Column: "d_cat"}},
	}
	if got := CandidateIndexes(q, schema()); len(got) != 0 {
		t.Fatalf("no predicates/joins/aggs should yield no candidates: %v", got)
	}
}

func TestUnknownTableSkipped(t *testing.T) {
	q := &query.Query{
		Name:   "ghost",
		Tables: []string{"ghost"},
		Preds:  []query.Pred{{Table: "ghost", Column: "x", Lo: 1, Hi: 1}},
	}
	if got := CandidateIndexes(q, schema()); len(got) != 0 {
		t.Fatalf("unknown table should be skipped: %v", got)
	}
}
