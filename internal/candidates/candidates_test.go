package candidates

import (
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/query"
)

func schema() *catalog.Schema {
	s := catalog.NewSchema("db")
	s.AddTable(&catalog.Table{Name: "fact", Rows: 50000, Columns: []catalog.Column{
		{Name: "id"}, {Name: "fk"}, {Name: "a"}, {Name: "b"}, {Name: "v"},
	}})
	s.AddTable(&catalog.Table{Name: "dim", Rows: 500, Columns: []catalog.Column{
		{Name: "d_id"}, {Name: "d_cat"},
	}})
	return s
}

func ids(ixs []*catalog.Index) map[string]bool {
	out := map[string]bool{}
	for _, ix := range ixs {
		out[ix.ID()] = true
	}
	return out
}

func TestEqualityThenRangeKeyOrder(t *testing.T) {
	q := &query.Query{
		Name:   "q",
		Tables: []string{"fact"},
		Preds: []query.Pred{
			{Table: "fact", Column: "a", Lo: 0, Hi: 100}, // range
			{Table: "fact", Column: "b", Lo: 5, Hi: 5},   // equality
		},
		Select: []query.ColRef{{Table: "fact", Column: "v"}},
	}
	got := ids(CandidateIndexes(q, schema()))
	// The multi-column key must put the equality first, range second.
	if !got["fact/bt(b,a)"] {
		t.Fatalf("missing eq-then-range key; got %v", got)
	}
	// Covering variant includes the remaining used column.
	if !got["fact/bt(b,a)+(v)"] {
		t.Fatalf("missing covering variant; got %v", got)
	}
	// Per-column candidates.
	if !got["fact/bt(a)"] || !got["fact/bt(b)"] {
		t.Fatalf("missing single-column candidates; got %v", got)
	}
}

func TestJoinColumnCandidates(t *testing.T) {
	q := &query.Query{
		Name:   "q",
		Tables: []string{"fact", "dim"},
		Joins:  []query.Join{{LeftTable: "fact", LeftColumn: "fk", RightTable: "dim", RightColumn: "d_id"}},
		Preds:  []query.Pred{{Table: "fact", Column: "b", Lo: 1, Hi: 1}},
		Select: []query.ColRef{{Table: "fact", Column: "v"}},
	}
	got := ids(CandidateIndexes(q, schema()))
	if !got["fact/bt(fk)"] {
		t.Fatalf("missing join-column candidate; got %v", got)
	}
	// Join column + equality predicate composite (index NLJ with filter).
	if !got["fact/bt(fk,b)"] {
		t.Fatalf("missing join+eq composite; got %v", got)
	}
}

func TestColumnstoreCandidateForAggregates(t *testing.T) {
	agg := &query.Query{
		Name:    "agg",
		Tables:  []string{"fact"},
		GroupBy: []query.ColRef{{Table: "fact", Column: "a"}},
		Aggs:    []query.Agg{{Func: query.Sum, Col: query.ColRef{Table: "fact", Column: "v"}}},
	}
	if !ids(CandidateIndexes(agg, schema()))["fact/cs"] {
		t.Fatal("aggregate query on a big table should get a columnstore candidate")
	}
	// Small tables do not.
	aggDim := &query.Query{
		Name:    "aggdim",
		Tables:  []string{"dim"},
		GroupBy: []query.ColRef{{Table: "dim", Column: "d_cat"}},
		Aggs:    []query.Agg{{Func: query.Count}},
	}
	if ids(CandidateIndexes(aggDim, schema()))["dim/cs"] {
		t.Fatal("500-row table should not get a columnstore candidate")
	}
}

func TestCapAndBigTablePriority(t *testing.T) {
	q := &query.Query{
		Name:   "wide",
		Tables: []string{"fact", "dim"},
		Preds: []query.Pred{
			{Table: "fact", Column: "a", Lo: 1, Hi: 1},
			{Table: "fact", Column: "b", Lo: 1, Hi: 9},
			{Table: "fact", Column: "v", Lo: 1, Hi: 9},
			{Table: "dim", Column: "d_cat", Lo: 1, Hi: 1},
		},
		Joins:   []query.Join{{LeftTable: "fact", LeftColumn: "fk", RightTable: "dim", RightColumn: "d_id"}},
		GroupBy: []query.ColRef{{Table: "dim", Column: "d_cat"}},
		Aggs:    []query.Agg{{Func: query.Count}},
	}
	cands := CandidateIndexes(q, schema())
	if len(cands) > MaxCandidatesPerQuery {
		t.Fatalf("cap exceeded: %d", len(cands))
	}
	// Candidates on the 50k-row fact table must come first.
	if cands[0].Table != "fact" {
		t.Fatalf("big-table candidates should lead: %v", cands[0].ID())
	}
}

func TestNoCandidatesForBareSelect(t *testing.T) {
	q := &query.Query{
		Name:   "bare",
		Tables: []string{"dim"},
		Select: []query.ColRef{{Table: "dim", Column: "d_cat"}},
	}
	if got := CandidateIndexes(q, schema()); len(got) != 0 {
		t.Fatalf("no predicates/joins/aggs should yield no candidates: %v", got)
	}
}

func TestUnknownTableSkipped(t *testing.T) {
	q := &query.Query{
		Name:   "ghost",
		Tables: []string{"ghost"},
		Preds:  []query.Pred{{Table: "ghost", Column: "x", Lo: 1, Hi: 1}},
	}
	if got := CandidateIndexes(q, schema()); len(got) != 0 {
		t.Fatalf("unknown table should be skipped: %v", got)
	}
}
