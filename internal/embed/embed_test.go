package embed

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/expdata"
	"repro/internal/feat"
)

// testRecords synthesizes telemetry in the shape the learn tests use: two
// channels, per-template masses, truthful or inverted costs.
func testRecords(n int, shift float64) []expdata.PlanRecord {
	masses := []float64{100, 200, 400, 800, 820}
	recs := make([]expdata.PlanRecord, 0, n*len(masses))
	for rep := 0; rep < n; rep++ {
		for ti, m := range masses {
			m += shift
			recs = append(recs, expdata.PlanRecord{
				DB:           "db",
				Query:        fmt.Sprintf("q%d", ti),
				Fingerprint:  uint64(rep*len(masses)+ti) + 1,
				Cost:         m,
				EstTotalCost: m,
				Channels: map[string][]float64{
					"EstNodeCost":                   {m},
					"LeafWeightEstBytesWeightedSum": {m / 2},
				},
			})
		}
	}
	return recs
}

func trainTestEncoder(t *testing.T, recs []expdata.PlanRecord, seed int64) (*Encoder, []Sample) {
	t.Helper()
	samples := RecordSamples(recs, feat.DefaultChannels())
	if len(samples) == 0 {
		t.Fatal("no samples survived conversion")
	}
	inputs := make([][]float64, len(samples))
	for i, s := range samples {
		inputs[i] = PlanInput(feat.DefaultChannels(), s.Vectors, s.Est)
	}
	enc, err := Train(inputs, Config{Seed: seed, Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	return enc, samples
}

// TestEncoderDeterministic: two independent train+embed runs under one seed
// are bit-identical — the property the drift detector and warm start rest
// on, independent of any host parallelism knob (nn trains serially).
func TestEncoderDeterministic(t *testing.T) {
	recs := testRecords(4, 0)
	run := func() ([][]float64, *WorkloadEmbedding) {
		enc, samples := trainTestEncoder(t, recs, 42)
		plans := make([][]float64, len(samples))
		for i, s := range samples {
			plans[i] = enc.EmbedPlan(s.Vectors, s.Est)
		}
		return plans, enc.Workload(samples)
	}
	p1, w1 := run()
	p2, w2 := run()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("plan embeddings differ between identical runs")
	}
	if !reflect.DeepEqual(w1, w2) {
		t.Fatal("workload embeddings differ between identical runs")
	}
}

// TestWorkloadEmbedding: unit norm, dims, and sensitivity — a heavily
// shifted workload must be farther from the reference than a replay of the
// reference itself.
func TestWorkloadEmbedding(t *testing.T) {
	recs := testRecords(4, 0)
	enc, samples := trainTestEncoder(t, recs, 7)
	we := enc.Workload(samples)
	if we == nil || we.Dim != 2*DefaultDim || len(we.Vector) != 2*DefaultDim {
		t.Fatalf("workload embedding shape wrong: %+v", we)
	}
	var norm float64
	for _, v := range we.Vector {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite embedding component: %v", we.Vector)
		}
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("embedding norm² = %v, want 1", norm)
	}
	if we.Records != len(samples) || we.Templates != 5 {
		t.Fatalf("records/templates = %d/%d, want %d/5", we.Records, we.Templates, len(samples))
	}

	same := enc.Workload(RecordSamples(testRecords(4, 0), feat.DefaultChannels()))
	shifted := enc.Workload(RecordSamples(testRecords(4, 5000), feat.DefaultChannels()))
	dSame, dShifted := Distance(we.Vector, same.Vector), Distance(we.Vector, shifted.Vector)
	if dSame > 1e-9 {
		t.Fatalf("distance to identical workload = %v, want ~0", dSame)
	}
	if dShifted <= dSame {
		t.Fatalf("shifted workload distance %v not above identical-workload distance %v", dShifted, dSame)
	}
}

// TestRecordSamplesSkipsHostile: invalid records are dropped, not fatal.
func TestRecordSamplesSkipsHostile(t *testing.T) {
	recs := testRecords(1, 0)
	recs[0].Cost = math.NaN()
	recs[1].Channels["EstNodeCost"] = []float64{math.Inf(1)}
	samples := RecordSamples(recs, feat.DefaultChannels())
	if len(samples) != len(recs)-2 {
		t.Fatalf("samples = %d, want %d (two hostile records skipped)", len(samples), len(recs)-2)
	}
}

// TestCosine covers the degenerate inputs the warm-start path can see.
func TestCosine(t *testing.T) {
	if c := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("cos(identical) = %v", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("cos(opposite) = %v", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{0, 0}); c != 0 {
		t.Fatalf("cos(zero vector) = %v, want 0", c)
	}
	if c := Cosine([]float64{1}, []float64{1, 0}); c != 0 {
		t.Fatalf("cos(mismatched dims) = %v, want 0", c)
	}
}

// TestSaveLoadEncoder: the round-tripped encoder embeds bit-identically.
func TestSaveLoadEncoder(t *testing.T) {
	recs := testRecords(3, 0)
	enc, samples := trainTestEncoder(t, recs, 5)
	var buf bytes.Buffer
	if err := SaveEncoder(enc, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEncoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != enc.Dim() || !reflect.DeepEqual(back.Channels(), enc.Channels()) {
		t.Fatalf("restored encoder config differs: dim %d/%d", back.Dim(), enc.Dim())
	}
	for _, s := range samples[:5] {
		if !reflect.DeepEqual(enc.EmbedPlan(s.Vectors, s.Est), back.EmbedPlan(s.Vectors, s.Est)) {
			t.Fatal("restored encoder embeds differently")
		}
	}
}

// TestLoadEncoderRejectsHostile: truncations and corruptions error cleanly.
func TestLoadEncoderRejectsHostile(t *testing.T) {
	recs := testRecords(3, 0)
	enc, _ := trainTestEncoder(t, recs, 5)
	var buf bytes.Buffer
	if err := SaveEncoder(enc, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := LoadEncoder(bytes.NewReader(nil)); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := LoadEncoder(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := LoadEncoder(bytes.NewReader([]byte("not a gob stream at all"))); err == nil {
		t.Error("garbage blob accepted")
	}
	for _, off := range []int{10, len(good) / 2, len(good) - 10} {
		c := append([]byte(nil), good...)
		c[off] ^= 0xff
		if _, err := LoadEncoder(bytes.NewReader(c)); err == nil {
			// A flipped bit may land in slack space gob ignores; only a
			// decode that *succeeds and then misbehaves* would be a bug, so
			// exercise the decoded encoder when it loads.
			e2, err := LoadEncoder(bytes.NewReader(c))
			if err == nil && e2 != nil {
				_ = e2.EmbedPlan(nil, 1)
			}
		}
	}
}
