package embed

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/feat"
	"repro/internal/ml/nn"
)

// FuzzLoadEncoder: hostile encoder blobs must error, never panic or hang —
// the registry admits uploaded encoder bytes and the warm-start path reads
// sibling tenants' blobs, so decode is a trust boundary. The corpus seeds a
// valid blob plus structured corruptions (bad dims, non-finite weights) so
// the fuzzer starts deep inside the format.
func FuzzLoadEncoder(f *testing.F) {
	recs := testRecords(2, 0)
	samples := RecordSamples(recs, feat.DefaultChannels())
	inputs := make([][]float64, len(samples))
	for i, s := range samples {
		inputs[i] = PlanInput(feat.DefaultChannels(), s.Vectors, s.Est)
	}
	enc, err := Train(inputs, Config{Seed: 1, Epochs: 5})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := SaveEncoder(enc, &valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(valid.Bytes()[:len(valid.Bytes())/3])

	// Structured corruptions: well-formed gob carrying out-of-bound claims.
	hostile := func(h encoderHeader, d *nn.Dump) []byte {
		var buf bytes.Buffer
		ge := gob.NewEncoder(&buf)
		_ = ge.Encode(&h)
		if d != nil {
			_ = ge.Encode(d)
		}
		return buf.Bytes()
	}
	f.Add(hostile(encoderHeader{Magic: "wrong", Format: 1, Channels: []int32{0}, Dim: 8}, nil))
	f.Add(hostile(encoderHeader{Magic: encoderMagic, Format: 99, Channels: []int32{0}, Dim: 8}, nil))
	f.Add(hostile(encoderHeader{Magic: encoderMagic, Format: 1, Channels: []int32{127}, Dim: 8}, nil))
	f.Add(hostile(encoderHeader{Magic: encoderMagic, Format: 1, Channels: []int32{0}, Dim: 1 << 30}, nil))
	f.Add(hostile(encoderHeader{Magic: encoderMagic, Format: 1, Channels: []int32{0, 1}, Dim: 2},
		&nn.Dump{InDim: 4, Hidden: []nn.LayerDump{{W: [][]float64{{math.NaN()}}, B: []float64{0}}}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := LoadEncoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A blob that decodes must yield a usable encoder: finite embedding
		// of the zero plan, correct dimensionality.
		got := e.EmbedPlan(nil, 0)
		if len(got) != e.Dim() {
			t.Fatalf("embedding dim %d, declared %d", len(got), e.Dim())
		}
		for _, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("decoded encoder produced non-finite embedding %v", got)
			}
		}
	})
}
