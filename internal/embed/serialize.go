package embed

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/feat"
	"repro/internal/ml/nn"
)

// encoderMagic / encoderFormat version the blob layout; a bump invalidates
// old blobs explicitly instead of misreading them.
const (
	encoderMagic  = "aimai-encoder"
	encoderFormat = 1
)

// encoderHeader precedes the weight dump in one gob stream, mirroring the
// classifierHeader pattern of internal/models: everything needed to
// validate the payload before trusting it.
type encoderHeader struct {
	Magic    string
	Format   int
	Channels []int32
	Dim      int
	// Center and Scale are the encoder's training geometry (centroid and
	// RMS radius of training embeddings) — workload pooling is expressed
	// relative to them, so they travel with the weights.
	Center []float64
	Scale  float64
}

// SaveEncoder serializes an encoder: header then nn weight dump, one gob
// stream.
func SaveEncoder(e *Encoder, w io.Writer) error {
	dump, err := e.net.Dump()
	if err != nil {
		return fmt.Errorf("embed: %w", err)
	}
	h := encoderHeader{
		Magic:  encoderMagic,
		Format: encoderFormat,
		Dim:    e.dim,
		Center: e.center,
		Scale:  e.scale,
	}
	for _, c := range e.channels {
		h.Channels = append(h.Channels, int32(c))
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&h); err != nil {
		return fmt.Errorf("embed: encoding header: %w", err)
	}
	if err := enc.Encode(dump); err != nil {
		return fmt.Errorf("embed: encoding weights: %w", err)
	}
	return nil
}

// maxEncoderBlob bounds how much of a reader LoadEncoder will consume: a
// hostile stream cannot make the decoder buffer unbounded input. Real
// encoder blobs are tens of KiB.
const maxEncoderBlob = 16 << 20

// LoadEncoder deserializes and validates an encoder blob. This is a trust
// boundary (registry uploads, cross-tenant warm start): every field is
// range-checked — channel ids against feat's channel space, the network
// input dim against the channel set, layer dims and weight finiteness
// inside nn.NetFromDump — so hostile bytes error, never panic (pinned by
// FuzzLoadEncoder).
func LoadEncoder(r io.Reader) (*Encoder, error) {
	dec := gob.NewDecoder(io.LimitReader(r, maxEncoderBlob))
	var h encoderHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("embed: decoding header: %w", err)
	}
	if h.Magic != encoderMagic {
		return nil, fmt.Errorf("embed: not an encoder blob (magic %q)", h.Magic)
	}
	if h.Format != encoderFormat {
		return nil, fmt.Errorf("embed: unsupported format %d (want %d)", h.Format, encoderFormat)
	}
	if len(h.Channels) == 0 || len(h.Channels) > feat.NumChannels {
		return nil, fmt.Errorf("embed: %d channels out of range [1,%d]", len(h.Channels), feat.NumChannels)
	}
	channels := make([]feat.Channel, len(h.Channels))
	for i, c := range h.Channels {
		if c < 0 || int(c) >= feat.NumChannels {
			return nil, fmt.Errorf("embed: unknown channel id %d", c)
		}
		channels[i] = feat.Channel(c)
	}
	if h.Dim <= 0 || h.Dim > 256 {
		return nil, fmt.Errorf("embed: embedding dim %d out of range [1,256]", h.Dim)
	}
	if len(h.Center) != h.Dim {
		return nil, fmt.Errorf("embed: center has dim %d, want %d", len(h.Center), h.Dim)
	}
	for i, v := range h.Center {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("embed: center[%d] is not finite", i)
		}
	}
	if math.IsNaN(h.Scale) || math.IsInf(h.Scale, 0) || h.Scale < minScale {
		return nil, fmt.Errorf("embed: scale %v out of range [%v,+inf)", h.Scale, minScale)
	}
	var dump nn.Dump
	if err := dec.Decode(&dump); err != nil {
		return nil, fmt.Errorf("embed: decoding weights: %w", err)
	}
	if dump.InDim != InputDim(channels) {
		return nil, fmt.Errorf("embed: input dim %d does not match %d channels (want %d)",
			dump.InDim, len(channels), InputDim(channels))
	}
	if len(dump.Hidden) == 0 {
		return nil, fmt.Errorf("embed: encoder has no hidden layers")
	}
	if got := len(dump.Hidden[len(dump.Hidden)-1].W); got != h.Dim {
		return nil, fmt.Errorf("embed: bottleneck width %d does not match declared dim %d", got, h.Dim)
	}
	if got := len(dump.Output.W); got != dump.InDim {
		return nil, fmt.Errorf("embed: output width %d does not reconstruct input dim %d", got, dump.InDim)
	}
	net, err := nn.NetFromDump(&dump)
	if err != nil {
		return nil, fmt.Errorf("embed: %w", err)
	}
	return &Encoder{channels: channels, dim: h.Dim, net: net, center: h.Center, scale: h.Scale}, nil
}
