// Package embed learns fixed-dimension plan and workload embeddings from
// execution telemetry — the workload-characterization layer the paper's
// adaptive-model story (§4.3) needs once hand-built channel statistics stop
// being enough. A small autoencoder (internal/ml/nn, dense stack, MSE loss)
// is trained to reconstruct featurized plan channel vectors; its bottleneck
// activations are the plan embedding. Workload embeddings pool the first
// and second moments of plan embeddings (record-weighted, centered and
// scaled by the encoder's training geometry, L2-normalized), so two
// workloads compare by cosine similarity regardless of volume.
//
// Everything is deterministic under a fixed Config.Seed: encoder training
// is strictly serial inside nn, so embeddings are bit-identical at any host
// parallelism setting (pinned by TestEncoderDeterministic).
package embed

import (
	"fmt"
	"math"

	"repro/internal/engine/plan"
	"repro/internal/expdata"
	"repro/internal/feat"
	"repro/internal/ml/nn"
	"repro/internal/obs"
)

// Encoder metric handles (see DESIGN.md §16).
var (
	mEncoderTrain = obs.H("embed.encoder.train")
	mPlanEmbeds   = obs.C("embed.plan.embeds")
)

// Embedding-geometry defaults: an 8-dim bottleneck under a 24-unit
// pre-bottleneck layer compresses the ~few-hundred-dim plan channel space
// without memorizing it; 40 epochs converge on the window sizes the learn
// loop compacts.
const (
	DefaultDim    = 8
	DefaultHidden = 24
	DefaultEpochs = 40
)

// Config declares an encoder's architecture and training run.
type Config struct {
	// Channels are the featurizer channels the encoder reads (default
	// feat.DefaultChannels); input dim is len(Channels)*plan.NumKeys+1.
	Channels []feat.Channel
	// Dim is the embedding (bottleneck) width.
	Dim int
	// Hidden is the pre-bottleneck layer width.
	Hidden int
	// Epochs is the autoencoder's training budget.
	Epochs int
	// Seed drives initialization and shuffling; fixed seed + fixed inputs =
	// bit-identical encoder.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Channels) == 0 {
		c.Channels = feat.DefaultChannels()
	}
	if c.Dim <= 0 {
		c.Dim = DefaultDim
	}
	if c.Hidden <= 0 {
		c.Hidden = DefaultHidden
	}
	if c.Epochs <= 0 {
		c.Epochs = DefaultEpochs
	}
	return c
}

// InputDim is the encoder input width for a channel set: every channel's
// operator-key vector plus the optimizer's total cost estimate.
func InputDim(channels []feat.Channel) int {
	return len(channels)*plan.NumKeys + 1
}

// Encoder is a trained plan autoencoder: EmbedPlan projects a featurized
// plan into the bottleneck space. Safe for concurrent use once trained.
//
// Alongside the network the encoder keeps its training geometry — the
// centroid and RMS radius of the training embeddings. Raw bottleneck
// activations share a large common offset (biases plus the data's mean
// activation), which would pin every workload's pooled vector in nearly
// the same direction and make cosine comparisons useless; workload vectors
// are therefore built from *centered, spread-normalized* embeddings.
type Encoder struct {
	channels []feat.Channel
	dim      int
	net      *nn.Net
	// center is the training centroid in embedding space; scale the RMS
	// distance of training embeddings from it (floored, so degenerate
	// training windows cannot divide by zero).
	center []float64
	scale  float64
}

// Channels returns the channel set the encoder was trained on.
func (e *Encoder) Channels() []feat.Channel { return e.channels }

// Dim returns the embedding width.
func (e *Encoder) Dim() int { return e.dim }

// PlanInput builds the encoder's input vector from per-channel plan vectors
// (feat channel order, each padded to plan.NumKeys) and the estimated total
// cost. Channel attributes and the cost estimate are mapped through signed
// log1p: plan costs are heavy-tailed and the autoencoder should spend its
// capacity on shape, not magnitude.
func PlanInput(channels []feat.Channel, vectors [][]float64, estTotalCost float64) []float64 {
	in := make([]float64, 0, InputDim(channels))
	for ci := range channels {
		var v []float64
		if ci < len(vectors) {
			v = vectors[ci]
		}
		for k := 0; k < plan.NumKeys; k++ {
			var x float64
			if k < len(v) {
				x = v[k]
			}
			in = append(in, signedLog1p(x))
		}
	}
	return append(in, signedLog1p(estTotalCost))
}

func signedLog1p(x float64) float64 {
	if x < 0 {
		return -math.Log1p(-x)
	}
	return math.Log1p(x)
}

// Train fits a plan autoencoder over encoder input vectors (PlanInput
// rows). At least two samples are required — a single plan has no workload
// shape to learn.
func Train(inputs [][]float64, cfg Config) (*Encoder, error) {
	cfg = cfg.withDefaults()
	if len(inputs) < 2 {
		return nil, fmt.Errorf("embed: need at least 2 samples to train an encoder, have %d", len(inputs))
	}
	want := InputDim(cfg.Channels)
	for i, in := range inputs {
		if len(in) != want {
			return nil, fmt.Errorf("embed: sample %d has dim %d, want %d", i, len(in), want)
		}
	}
	sp := obs.StartSpan("embed.encoder.train")
	defer sp.End()
	// The bottleneck is linear (identity activation): a saturating
	// nonlinearity there collapses out-of-distribution plans onto the same
	// corner of the cube, which is exactly where the drift detector needs
	// resolution. The pre-bottleneck layer stays tanh for capacity.
	net := nn.New(nn.Config{
		Hidden: []nn.LayerSpec{
			{Kind: nn.Dense, Out: cfg.Hidden, Act: nn.Tanh},
			{Kind: nn.Dense, Out: cfg.Dim, Act: nn.Identity},
		},
		Epochs:    cfg.Epochs,
		BatchSize: 16,
		Seed:      cfg.Seed,
	})
	if err := net.FitTargets(inputs, inputs); err != nil {
		return nil, fmt.Errorf("embed: training encoder: %w", err)
	}
	mEncoderTrain.Observe(float64(cfg.Epochs))
	e := &Encoder{channels: append([]feat.Channel(nil), cfg.Channels...), dim: cfg.Dim, net: net}
	// Capture the training geometry: centroid and RMS radius of the
	// training embeddings. Workload vectors are expressed relative to it.
	e.center = make([]float64, cfg.Dim)
	embs := make([][]float64, len(inputs))
	for i, in := range inputs {
		embs[i] = net.Hidden(in)
		for j, v := range embs[i] {
			e.center[j] += v / float64(len(inputs))
		}
	}
	var r2 float64
	for _, emb := range embs {
		for j, v := range emb {
			d := v - e.center[j]
			r2 += d * d
		}
	}
	e.scale = math.Sqrt(r2 / float64(len(inputs)))
	if e.scale < minScale {
		e.scale = minScale
	}
	return e, nil
}

// minScale floors the training radius: a degenerate window (all plans
// identical) still yields a usable, if insensitive, geometry.
const minScale = 1e-6

// EmbedPlan projects one featurized plan (per-channel vectors + estimated
// total cost) into the embedding space.
func (e *Encoder) EmbedPlan(vectors [][]float64, estTotalCost float64) []float64 {
	mPlanEmbeds.Inc()
	return e.net.Hidden(PlanInput(e.channels, vectors, estTotalCost))
}

// Sample is one plan observation ready to embed: canonical channel vectors
// (feat order, padded to plan.NumKeys), the optimizer estimate, the
// template group, and the record weight.
type Sample struct {
	Vectors  [][]float64
	Est      float64
	Template uint64
	Weight   float64
}

// RecordSamples converts raw telemetry into embedding samples, skipping
// records that fail the same validation compaction applies (bad costs,
// malformed channels). Order is preserved, so pooling is deterministic.
func RecordSamples(recs []expdata.PlanRecord, channels []feat.Channel) []Sample {
	names := make([]string, len(channels))
	for i, c := range channels {
		names[i] = c.String()
	}
	out := make([]Sample, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		if r.CheckCosts() != nil {
			continue
		}
		vs, _, err := r.ChannelVectors(names, plan.NumKeys)
		if err != nil {
			continue
		}
		out = append(out, Sample{
			Vectors:  vs,
			Est:      r.EstTotalCost,
			Template: templateOf(r),
			Weight:   r.EffectiveWeight(),
		})
	}
	return out
}

// templateOf mirrors learn's template grouping: the template hash when the
// emitter provided one, else a stable hash of (db, query).
func templateOf(r *expdata.PlanRecord) uint64 {
	if r.TemplateHash != 0 {
		return r.TemplateHash
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, s := range []string{r.DB, "\x00", r.Query} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	return h
}

// WorkloadEmbedding is a workload's fixed-dimension summary: the
// L2-normalized concatenation of the weighted mean and weighted spread of
// its plan embeddings, both expressed relative to the encoder's training
// geometry. Two workloads compare by cosine similarity; Dim is the vector
// length (2× the encoder's bottleneck width).
type WorkloadEmbedding struct {
	Dim       int       `json:"dim"`
	Vector    []float64 `json:"vector"`
	Records   int       `json:"records"`
	Templates int       `json:"templates"`
	// EncoderVersion is the registry version of the encoder that produced
	// the vector (0 for unversioned encoders).
	EncoderVersion int `json:"encoder_version,omitempty"`
}

// Workload pools plan embeddings into one workload embedding. Every plan
// embedding is first centered by the encoder's training centroid and scaled
// by its training radius; the workload vector is then the concatenation of
// the record-weight-weighted mean and weighted standard deviation of those
// normalized embeddings, L2-normalized. The mean half captures where the
// workload sits relative to the encoder's training distribution (≈0 on the
// training window itself), the spread half its shape — so both location and
// dispersion shifts rotate the vector. Pooling is a streaming moment
// accumulation, so identical sample sequences pool identically. Returns nil
// when no sample survives.
func (e *Encoder) Workload(samples []Sample) *WorkloadEmbedding {
	sum := make([]float64, e.dim)
	sumSq := make([]float64, e.dim)
	var total float64
	seen := map[uint64]struct{}{}
	for i := range samples {
		s := &samples[i]
		w := s.Weight
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			w = 1
		}
		emb := e.EmbedPlan(s.Vectors, s.Est)
		for j, v := range emb {
			z := (v - e.center[j]) / e.scale
			sum[j] += w * z
			sumSq[j] += w * z * z
		}
		total += w
		seen[s.Template] = struct{}{}
	}
	if total == 0 {
		return nil
	}
	pooled := make([]float64, 2*e.dim)
	for j := 0; j < e.dim; j++ {
		mean := sum[j] / total
		varj := sumSq[j]/total - mean*mean
		if varj < 0 { // float cancellation
			varj = 0
		}
		pooled[j] = mean
		pooled[e.dim+j] = math.Sqrt(varj)
	}
	normalize(pooled)
	return &WorkloadEmbedding{
		Dim:       2 * e.dim,
		Vector:    pooled,
		Records:   len(samples),
		Templates: len(seen),
	}
}

// normalize scales v to unit L2 norm in place (no-op on the zero vector).
func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

// Cosine returns the cosine similarity of two vectors (0 for mismatched or
// zero-norm inputs).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Distance is the cosine distance 1−cos(a,b) — 0 for identical directions,
// 2 for opposite. Floored at 0: float error can push the cosine of two
// identical vectors a hair past 1, and a drift distance must never be
// negative. The drift detector compares it against
// Options.EmbedDriftThreshold.
func Distance(a, b []float64) float64 {
	if d := 1 - Cosine(a, b); d > 0 {
		return d
	}
	return 0
}
