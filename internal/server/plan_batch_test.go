package server

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"
)

// TestPlanBatchEndpoint covers the batched mode of POST /v1/plan: one query
// planned under several configurations in a single call.
func TestPlanBatchEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + addr

	body := `{"query":"q6","configs":[
		[],
		[{"table":"lineitem","key":["l_shipdate"]}],
		[{"table":"lineitem","key":["l_shipdate"],"include":["l_discount","l_quantity","l_price"]}]
	]}`
	var batch planBatchResponse
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(body), &batch); code != http.StatusOK {
		t.Fatalf("batch plan: %d (%+v)", code, batch)
	}
	if batch.Query != "q6" || len(batch.Plans) != 3 {
		t.Fatalf("batch response = %+v", batch)
	}
	for i, pr := range batch.Plans {
		if pr.EstCost <= 0 || pr.Plan == "" {
			t.Fatalf("plan %d is empty: %+v", i, pr)
		}
		if len(pr.Indexes) != map[int]int{0: 0, 1: 1, 2: 1}[i] {
			t.Fatalf("plan %d echoes %d indexes", i, len(pr.Indexes))
		}
	}
	// The covering index must not cost more than planning with no indexes,
	// and the batch results must agree with the single-config endpoint.
	if batch.Plans[2].EstCost > batch.Plans[0].EstCost {
		t.Fatalf("covering-index plan costs more than no-index plan: %+v", batch.Plans)
	}
	var single planResponse
	singleBody := `{"query":"q6","indexes":[{"table":"lineitem","key":["l_shipdate"],"include":["l_discount","l_quantity","l_price"]}]}`
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(singleBody), &single); code != http.StatusOK {
		t.Fatalf("single plan: %d", code)
	}
	if math.Float64bits(single.EstCost) != math.Float64bits(batch.Plans[2].EstCost) || single.Plan != batch.Plans[2].Plan {
		t.Fatalf("batch and single results diverge:\n%+v\nvs\n%+v", batch.Plans[2], single)
	}

	// Mutual exclusion of indexes and configs.
	var apiErr map[string]any
	both := `{"query":"q6","indexes":[{"table":"lineitem","key":["l_shipdate"]}],"configs":[[]]}`
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(both), &apiErr); code != http.StatusBadRequest {
		t.Fatalf("indexes+configs should be rejected: %d (%v)", code, apiErr)
	}

	// An invalid configuration is reported with its batch position.
	bad := `{"query":"q6","configs":[[],[{"table":"lineitem"}]]}`
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(bad), &apiErr); code != http.StatusBadRequest {
		t.Fatalf("keyless btree in batch: %d", code)
	}
	if msg, _ := apiErr["error"].(string); !strings.Contains(msg, "config 1") {
		t.Fatalf("error should name the failing config: %v", apiErr)
	}
}
