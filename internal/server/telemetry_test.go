package server

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expdata"
)

// telRec builds a small telemetry record whose Query encodes n, so tests
// can verify ordering across segments.
func telRec(n int) expdata.PlanRecord {
	return expdata.PlanRecord{
		DB:           "db",
		Query:        fmt.Sprintf("q%04d", n),
		Fingerprint:  uint64(n + 1),
		Cost:         float64(n),
		EstTotalCost: float64(n),
		Channels:     map[string][]float64{"EstNodeCost": {float64(n)}},
	}
}

func TestTelemetryRotationAndCrossSegmentSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	// ~150 bytes per record: a 1KiB segment holds a handful, so 40 records
	// force several rotations.
	sink, err := openTelemetrySink(path, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := sink.append([]expdata.PlanRecord{telRec(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if sink.total() != n {
		t.Fatalf("total = %d, want %d", sink.total(), n)
	}
	recs, total := sink.snapshot()
	if total != n {
		t.Fatalf("snapshot total = %d, want %d", total, n)
	}
	// Rotation drops the oldest segments, so the window is a strict suffix
	// of the ingest stream: the last record must be the newest, order must
	// be preserved, and the watermark arithmetic (last record has ordinal
	// total−1) must hold.
	if len(recs) == 0 || len(recs) == n {
		t.Fatalf("window = %d records, want a proper suffix of %d (rotation must have dropped some)", len(recs), n)
	}
	for i, r := range recs {
		want := fmt.Sprintf("q%04d", n-len(recs)+i)
		if r.Query != want {
			t.Fatalf("window[%d] = %s, want %s (suffix alignment broken)", i, r.Query, want)
		}
	}
	// The rotated segment files exist and respect the bound.
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated segment missing: %v", err)
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("segment beyond the retention bound exists (err=%v)", err)
	}
	if err := sink.close(); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryRestartKeepsWatermarkAlignment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	sink, err := openTelemetrySink(path, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sink.append([]expdata.PlanRecord{telRec(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: records found on disk count into the total, so a watermark
	// taken before the restart still slices correctly after it.
	sink2, err := openTelemetrySink(path, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.close()
	if sink2.total() != 10 {
		t.Fatalf("total after reopen = %d, want 10", sink2.total())
	}
	if err := sink2.append([]expdata.PlanRecord{telRec(10)}); err != nil {
		t.Fatal(err)
	}
	recs, total := sink2.snapshot()
	if total != 11 {
		t.Fatalf("total = %d, want 11", total)
	}
	if last := recs[len(recs)-1].Query; last != "q0010" {
		t.Fatalf("last record = %s, want q0010", last)
	}
}

func TestTelemetrySnapshotSkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	sink, err := openTelemetrySink(path, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.append([]expdata.PlanRecord{telRec(0)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a torn, unparseable trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"db":"db","query":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sink2, err := openTelemetrySink(path, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.close()
	recs, _ := sink2.snapshot()
	if len(recs) != 1 || recs[0].Query != "q0000" {
		t.Fatalf("snapshot = %d records (%v), want just the intact one", len(recs), recs)
	}
	// The torn line must have been terminated on reopen: a record appended
	// after the crash stays parseable instead of merging into the torn one.
	if err := sink2.append([]expdata.PlanRecord{telRec(1)}); err != nil {
		t.Fatal(err)
	}
	recs, _ = sink2.snapshot()
	if len(recs) != 2 || recs[1].Query != "q0001" {
		t.Fatalf("post-crash append = %d records (%v), want the new record intact", len(recs), recs)
	}
}

func TestTelemetryMemoryMode(t *testing.T) {
	sink, err := openTelemetrySink("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.close()
	for i := 0; i < 5; i++ {
		if err := sink.append([]expdata.PlanRecord{telRec(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, total := sink.snapshot()
	if len(recs) != 5 || total != 5 {
		t.Fatalf("memory snapshot = (%d records, total %d), want (5, 5)", len(recs), total)
	}
	// Snapshot is a copy: mutating it must not corrupt the sink.
	recs[0].Query = "mutated"
	again, _ := sink.snapshot()
	if again[0].Query != "q0000" {
		t.Fatal("snapshot aliases the sink's backing slice")
	}
}
