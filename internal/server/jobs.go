package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

// Job-manager metric handles (see DESIGN.md §7/§8). Queue depth and
// rejection counts live in tenant.Scheduler, which owns the queues.
var (
	mJobsSubmitted = obs.C("server.jobs.submitted")
	mJobsDone      = obs.C("server.jobs.done")
	mJobsFailed    = obs.C("server.jobs.failed")
	mJobsCancelled = obs.C("server.jobs.cancelled")
	mJobLatency    = obs.H("server.jobs.latency")
)

// JobState is a tuning job's lifecycle state. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled                      (cancelled before a worker picked it up)
//
// Terminal states never change again.
type JobState string

// Job states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// ErrQueueFull is returned by submit when the submitting tenant's queue is
// at capacity; HTTP maps it to a per-tenant 429.
var ErrQueueFull = errors.New("server: job queue full")

// ErrShuttingDown is returned by submit after drain began.
var ErrShuttingDown = errors.New("server: shutting down")

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID         string     `json:"id"`
	Tenant     string     `json:"tenant,omitempty"`
	State      JobState   `json:"state"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Error      string     `json:"error,omitempty"`
	Result     any        `json:"result,omitempty"`
}

// job is one asynchronous unit of work.
type job struct {
	id     string
	tenant string
	run    func(ctx context.Context) (any, error)

	// ctx is derived from the manager's base context; cancel aborts the
	// job whether queued or running.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      string
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, Tenant: j.tenant, State: j.state, CreatedAt: j.created, Error: j.err, Result: j.result}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// jobs runs tuning work from per-tenant bounded queues drained by a fixed
// worker pool in weighted round-robin order (tenant.Scheduler), so one
// tenant flooding its queue delays its own jobs, not its neighbours'.
type jobs struct {
	sched *tenant.Scheduler
	wg    sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	byID    map[string]*job
	order   []string
	nextID  int
	closing bool
}

// newJobs starts a manager with the given worker count, per-tenant queue
// capacity, and WRR weights (nil = every tenant weight 1).
func newJobs(workers, perTenantCap int, weights map[string]int) *jobs {
	if workers < 1 {
		workers = 1
	}
	base, cancel := context.WithCancel(context.Background())
	m := &jobs{
		sched:      tenant.NewScheduler(perTenantCap, weights),
		baseCtx:    base,
		baseCancel: cancel,
		byID:       map[string]*job{},
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func (m *jobs) worker() {
	defer m.wg.Done()
	for {
		item, _, ok := m.sched.Next()
		if !ok {
			return
		}
		m.execute(item.(*job))
	}
}

// execute runs one job to a terminal state. A job cancelled while queued is
// skipped; a job whose context is cancelled mid-run lands in "cancelled"
// rather than "failed" so clients can tell aborts from errors.
func (m *jobs) execute(j *job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	result, err := j.run(j.ctx)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	mJobLatency.Observe(j.finished.Sub(j.started).Seconds())
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
		mJobsDone.Inc()
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.state = JobCancelled
		j.err = context.Cause(j.ctx).Error()
		mJobsCancelled.Inc()
	default:
		j.state = JobFailed
		j.err = err.Error()
		mJobsFailed.Inc()
	}
}

// submit enqueues fn on tenantID's queue. It never blocks: a full tenant
// queue returns ErrQueueFull immediately (per-tenant backpressure for the
// HTTP layer to surface as 429; other tenants keep submitting).
func (m *jobs) submit(tenantID string, fn func(ctx context.Context) (any, error)) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return nil, ErrShuttingDown
	}
	m.nextID++
	ctx, cancel := context.WithCancelCause(m.baseCtx)
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.nextID),
		tenant:  tenantID,
		run:     fn,
		ctx:     ctx,
		cancel:  func() { cancel(errors.New("job cancelled")) },
		state:   JobQueued,
		created: time.Now(),
	}
	if err := m.sched.Submit(tenantID, j); err != nil {
		cancel(nil)
		m.nextID-- // the id was never visible; reuse it
		switch {
		case errors.Is(err, tenant.ErrQueueFull):
			return nil, ErrQueueFull
		case errors.Is(err, tenant.ErrSchedulerClosed):
			return nil, ErrShuttingDown
		default:
			return nil, err
		}
	}
	m.byID[j.id] = j
	m.order = append(m.order, j.id)
	mJobsSubmitted.Inc()
	return j, nil
}

// get returns a job by id, or nil.
func (m *jobs) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// list snapshots every job's status in submission order; tenantID filters
// to one tenant ("" = all).
func (m *jobs) list(tenantID string) []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	byID := make([]*job, 0, len(ids))
	for _, id := range ids {
		byID = append(byID, m.byID[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(byID))
	for _, j := range byID {
		if tenantID != "" && j.tenant != tenantID {
			continue
		}
		out = append(out, j.status())
	}
	return out
}

// cancelJob cancels a job. Queued jobs go terminal immediately; running
// jobs get their context cancelled and go terminal when the tuner unwinds.
// Returns false when the job is already terminal.
func (m *jobs) cancelJob(j *job) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	wasQueued := j.state == JobQueued
	if wasQueued {
		j.state = JobCancelled
		j.finished = time.Now()
		j.err = "job cancelled"
		mJobsCancelled.Inc()
	}
	j.mu.Unlock()
	// Cancel the context outside the job lock: a running job's tuner
	// observes it and returns; execute() then marks the terminal state.
	j.cancel()
	return true
}

// counts tallies jobs by state for /healthz.
func (m *jobs) counts(tenantID string) map[JobState]int {
	out := map[JobState]int{}
	for _, st := range m.list(tenantID) {
		out[st.State]++
	}
	return out
}

// drain stops accepting new jobs and waits for in-flight ones. Queued jobs
// still run (the queues drain in fair order, they are not dropped) unless
// ctx expires first, in which case every remaining job is cancelled and
// drain waits for the workers to unwind before returning ctx's error.
func (m *jobs) drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return nil
	}
	m.closing = true
	m.mu.Unlock()
	m.sched.Close()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel() // cancel running jobs and anything still queued
		<-done
		return ctx.Err()
	}
}
