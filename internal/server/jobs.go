package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job-manager metric handles (see DESIGN.md §7/§8).
var (
	mJobsSubmitted  = obs.C("server.jobs.submitted")
	mJobsRejected   = obs.C("server.jobs.rejected")
	mJobsDone       = obs.C("server.jobs.done")
	mJobsFailed     = obs.C("server.jobs.failed")
	mJobsCancelled  = obs.C("server.jobs.cancelled")
	mJobsQueueDepth = obs.G("server.jobs.queue.depth")
	mJobLatency     = obs.H("server.jobs.latency")
)

// JobState is a tuning job's lifecycle state. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled                      (cancelled before a worker picked it up)
//
// Terminal states never change again.
type JobState string

// Job states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity; HTTP maps it to 429.
var ErrQueueFull = errors.New("server: job queue full")

// ErrShuttingDown is returned by Submit after Drain began.
var ErrShuttingDown = errors.New("server: shutting down")

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID         string     `json:"id"`
	State      JobState   `json:"state"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Error      string     `json:"error,omitempty"`
	Result     any        `json:"result,omitempty"`
}

// job is one asynchronous unit of work.
type job struct {
	id  string
	run func(ctx context.Context) (any, error)

	// ctx is derived from the manager's base context; cancel aborts the
	// job whether queued or running.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      string
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, CreatedAt: j.created, Error: j.err, Result: j.result}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// jobs is a bounded queue drained by a fixed worker pool.
type jobs struct {
	queue chan *job
	wg    sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	byID    map[string]*job
	order   []string
	nextID  int
	closing bool
}

// newJobs starts a manager with the given worker count and queue capacity.
func newJobs(workers, queueCap int) *jobs {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	base, cancel := context.WithCancel(context.Background())
	m := &jobs{
		queue:      make(chan *job, queueCap),
		baseCtx:    base,
		baseCancel: cancel,
		byID:       map[string]*job{},
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func (m *jobs) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		mJobsQueueDepth.Set(float64(len(m.queue)))
		m.execute(j)
	}
}

// execute runs one job to a terminal state. A job cancelled while queued is
// skipped; a job whose context is cancelled mid-run lands in "cancelled"
// rather than "failed" so clients can tell aborts from errors.
func (m *jobs) execute(j *job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	result, err := j.run(j.ctx)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	mJobLatency.Observe(j.finished.Sub(j.started).Seconds())
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
		mJobsDone.Inc()
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.state = JobCancelled
		j.err = context.Cause(j.ctx).Error()
		mJobsCancelled.Inc()
	default:
		j.state = JobFailed
		j.err = err.Error()
		mJobsFailed.Inc()
	}
}

// submit enqueues fn. It never blocks: a full queue returns ErrQueueFull
// immediately (backpressure for the HTTP layer to surface as 429).
func (m *jobs) submit(fn func(ctx context.Context) (any, error)) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return nil, ErrShuttingDown
	}
	m.nextID++
	ctx, cancel := context.WithCancelCause(m.baseCtx)
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.nextID),
		run:     fn,
		ctx:     ctx,
		cancel:  func() { cancel(errors.New("job cancelled")) },
		state:   JobQueued,
		created: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		cancel(nil)
		m.nextID-- // the id was never visible; reuse it
		mJobsRejected.Inc()
		return nil, ErrQueueFull
	}
	m.byID[j.id] = j
	m.order = append(m.order, j.id)
	mJobsSubmitted.Inc()
	mJobsQueueDepth.Set(float64(len(m.queue)))
	return j, nil
}

// get returns a job by id, or nil.
func (m *jobs) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// list snapshots every job's status in submission order.
func (m *jobs) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	byID := make([]*job, 0, len(ids))
	for _, id := range ids {
		byID = append(byID, m.byID[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(byID))
	for _, j := range byID {
		out = append(out, j.status())
	}
	return out
}

// cancelJob cancels a job. Queued jobs go terminal immediately; running
// jobs get their context cancelled and go terminal when the tuner unwinds.
// Returns false when the job is already terminal.
func (m *jobs) cancelJob(j *job) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	wasQueued := j.state == JobQueued
	if wasQueued {
		j.state = JobCancelled
		j.finished = time.Now()
		j.err = "job cancelled"
		mJobsCancelled.Inc()
	}
	j.mu.Unlock()
	// Cancel the context outside the job lock: a running job's tuner
	// observes it and returns; execute() then marks the terminal state.
	j.cancel()
	return true
}

// counts tallies jobs by state for /healthz.
func (m *jobs) counts() map[JobState]int {
	out := map[JobState]int{}
	for _, st := range m.list() {
		out[st.State]++
	}
	return out
}

// drain stops accepting new jobs and waits for in-flight ones. Queued jobs
// still run (the queue is drained, not dropped) unless ctx expires first, in
// which case every remaining job is cancelled and drain waits for the
// workers to unwind before returning ctx's error.
func (m *jobs) drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return nil
	}
	m.closing = true
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel() // cancel running jobs and anything still queued
		<-done
		return ctx.Err()
	}
}
