package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
)

// TestClassifyBatch exercises the batched /v1/classify mode: many
// configuration pairs for one query, all answered by one batched
// comparator call, with verdicts matching the single-pair endpoint.
func TestClassifyBatch(t *testing.T) {
	s := newTestServer(t, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + addr

	var up map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/models", bytes.NewReader(testModelBlob(t, 1)), &up); code != http.StatusCreated {
		t.Fatalf("model upload: %d (%v)", code, up)
	}

	const body = `{"query":"q6","pairs":[
		{"indexes_b":[{"table":"lineitem","key":["l_shipdate"]}]},
		{"indexes_b":[{"table":"lineitem","key":["l_discount"]}]},
		{"indexes_a":[{"table":"lineitem","key":["l_shipdate"]}],
		 "indexes_b":[{"table":"lineitem","key":["l_shipdate"],"include":["l_discount","l_quantity","l_price"]}]}
	]}`
	var resp classifyResponse
	if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(body), &resp); code != http.StatusOK {
		t.Fatalf("batch classify: %d (%+v)", code, resp)
	}
	if resp.Comparator != "model" || resp.ModelVersion != 1 {
		t.Fatalf("batch response header = %+v", resp)
	}
	if len(resp.Verdicts) != 3 {
		t.Fatalf("want 3 verdicts, got %d", len(resp.Verdicts))
	}
	for i, v := range resp.Verdicts {
		switch v.Verdict {
		case "improvement", "regression", "unsure":
		default:
			t.Fatalf("verdict[%d] = %q", i, v.Verdict)
		}
		if v.EstCostA <= 0 || v.EstCostB <= 0 {
			t.Fatalf("verdict[%d] costs = %+v", i, v)
		}
	}

	// Each batched verdict must match the single-pair endpoint.
	single := `{"query":"q6","indexes_b":[{"table":"lineitem","key":["l_shipdate"]}]}`
	var one classifyResponse
	if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(single), &one); code != http.StatusOK {
		t.Fatalf("single classify: %d", code)
	}
	if one.Verdict != resp.Verdicts[0].Verdict {
		t.Fatalf("batch verdict %q != single verdict %q", resp.Verdicts[0].Verdict, one.Verdict)
	}

	// pairs and top-level indexes are mutually exclusive.
	bad := `{"query":"q6","indexes_b":[{"table":"lineitem","key":["l_shipdate"]}],"pairs":[{}]}`
	var apiErr map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(bad), &apiErr); code != http.StatusBadRequest {
		t.Fatalf("mixed request: %d (%v)", code, apiErr)
	}

	// The optimizer baseline batches too (no model required).
	optBody := `{"query":"q6","comparator":"optimizer","pairs":[{"indexes_b":[{"table":"lineitem","key":["l_shipdate"]}]}]}`
	var ob classifyResponse
	if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(optBody), &ob); code != http.StatusOK {
		t.Fatalf("optimizer batch: %d", code)
	}
	if ob.Comparator != "optimizer" || len(ob.Verdicts) != 1 {
		t.Fatalf("optimizer batch = %+v", ob)
	}
}
