package registry

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestTenantNamespacedStores exercises the registry as the tenant manager
// uses it: one store per tenant directory under a shared data root, opened
// and mutated concurrently. Each namespace versions, activates, and prunes
// independently.
func TestTenantNamespacedStores(t *testing.T) {
	root := t.TempDir()
	dirs := []string{
		filepath.Join(root, "acme", "models"),
		filepath.Join(root, "beta", "models"),
	}

	regs := make([]*Registry, len(dirs))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			r, err := Open(dir)
			if err != nil {
				t.Errorf("Open(%s): %v", dir, err)
				return
			}
			for v := 1; v <= 3; v++ {
				if _, err := r.Add(testBlob(t, int64(10*i+v))); err != nil {
					t.Errorf("Add %s v%d: %v", dir, v, err)
					return
				}
			}
			if err := r.Activate(2); err != nil {
				t.Errorf("Activate(%s): %v", dir, err)
				return
			}
			regs[i] = r
		}(i, dir)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Per-tenant prune: each namespace retains its active version plus the
	// newest keep=1, independent of the other tenant's registry.
	for i, r := range regs {
		removed, err := r.Prune(1)
		if err != nil {
			t.Fatalf("Prune tenant %d: %v", i, err)
		}
		if len(removed) != 1 || removed[0] != 1 {
			t.Fatalf("Prune tenant %d removed %v, want [1]", i, removed)
		}
		if got := len(r.List()); got != 2 {
			t.Fatalf("tenant %d retains %d versions, want 2 (active v2 + newest v3)", i, got)
		}
		if a := r.Active(); a == nil || a.ID != 2 {
			t.Fatalf("tenant %d active = %v, want v2", i, a)
		}
	}

	// Tenant layouts are disjoint: acme's prune must not have touched
	// beta's files and vice versa.
	for i, dir := range dirs {
		if _, err := os.Stat(filepath.Join(dir, "v0001.clf")); !os.IsNotExist(err) {
			t.Fatalf("tenant %d: pruned v0001.clf still present (err=%v)", i, err)
		}
		if _, err := os.Stat(filepath.Join(dir, "v0002.clf")); err != nil {
			t.Fatalf("tenant %d: active blob missing: %v", i, err)
		}
	}

	// Corrupting one tenant's store rejects only that tenant on reopen —
	// the blast radius of a bad namespace is one tenant, not the fleet.
	if err := os.WriteFile(filepath.Join(dirs[0], "v0002.clf"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dirs[0]); err == nil {
		t.Fatal("Open of corrupt tenant store succeeded")
	}
	r, err := Open(dirs[1])
	if err != nil {
		t.Fatalf("healthy tenant store rejected after sibling corruption: %v", err)
	}
	if a := r.Active(); a == nil || a.ID != 2 {
		t.Fatalf("healthy tenant reopened active = %v, want v2", a)
	}
}

// TestConcurrentReopenAcrossTenants reopens two tenant stores in parallel
// repeatedly (the eviction → reload path) while asserting CURRENT survives
// every cycle.
func TestConcurrentReopenAcrossTenants(t *testing.T) {
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "a", "models"), filepath.Join(root, "b", "models")}
	for i, dir := range dirs {
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.AddAndActivate(testBlob(t, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, dir := range dirs {
		wg.Add(1)
		go func(dir string) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				r, err := Open(dir)
				if err != nil {
					t.Errorf("reopen %s: %v", dir, err)
					return
				}
				a := r.Active()
				if a == nil || a.ID != 1 {
					t.Errorf("reopen %s: active = %v, want v1", dir, a)
					return
				}
			}
		}(dir)
	}
	wg.Wait()
}
