// Encoder store: plan-encoder blobs (internal/embed) are versioned next to
// classifier blobs with the same discipline — validate before admit,
// temp-file+rename persistence, atomic hot-swap of the active pointer.
//
// On-disk layout additions:
//
//	<dir>/v0001.enc      encoder blob (embed.SaveEncoder format)
//	<dir>/CURRENT_ENC    the active encoder version in ASCII
//	<dir>/workload.emb   the reference workload embedding (JSON)
//	<dir>/provenance.json warm-start provenance, written once when a tenant
//	                      is seeded from another tenant's champion
package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/embed"
	"repro/internal/models"
)

// EncoderVersion is one immutable encoder entry.
type EncoderVersion struct {
	ID      int
	Path    string
	Size    int64
	AddedAt time.Time
	Enc     *embed.Encoder
}

func (r *Registry) encPath(id int) string {
	return filepath.Join(r.dir, fmt.Sprintf("v%04d.enc", id))
}

// loadEncoders restores encoder versions and the CURRENT_ENC pointer during
// Open (single-threaded; no locking).
func (r *Registry) loadEncoders(entries []os.DirEntry) error {
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".enc") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".enc"))
		if err != nil || id <= 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		path := r.encPath(id)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("registry: reading %s: %w", path, err)
		}
		enc, err := embed.LoadEncoder(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("registry: loading %s: %w", path, err)
		}
		info, _ := os.Stat(path)
		added := time.Now()
		if info != nil {
			added = info.ModTime()
		}
		r.encoders = append(r.encoders, &EncoderVersion{
			ID: id, Path: path, Size: int64(len(data)), AddedAt: added, Enc: enc,
		})
	}
	cur, err := os.ReadFile(filepath.Join(r.dir, "CURRENT_ENC"))
	if err == nil {
		id, perr := strconv.Atoi(strings.TrimSpace(string(cur)))
		if perr != nil {
			return fmt.Errorf("registry: corrupt CURRENT_ENC file: %q", cur)
		}
		v := r.findEncoder(id)
		if v == nil {
			return fmt.Errorf("registry: CURRENT_ENC points at missing encoder %d", id)
		}
		r.activeEnc.Store(v)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("registry: reading CURRENT_ENC: %w", err)
	}
	return nil
}

// findEncoder returns the encoder version with the given id; callers hold
// r.mu or run during single-threaded Open.
func (r *Registry) findEncoder(id int) *EncoderVersion {
	for _, v := range r.encoders {
		if v.ID == id {
			return v
		}
	}
	return nil
}

// AddEncoder validates an encoder blob and stores it as the next encoder
// version without activating it. The blob must round-trip through
// embed.LoadEncoder; anything else is rejected.
func (r *Registry) AddEncoder(data []byte) (*EncoderVersion, error) {
	enc, err := embed.LoadEncoder(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("registry: invalid encoder: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := 1
	if n := len(r.encoders); n > 0 {
		id = r.encoders[n-1].ID + 1
	}
	v := &EncoderVersion{ID: id, Size: int64(len(data)), AddedAt: time.Now(), Enc: enc}
	if r.dir != "" {
		path := r.encPath(id)
		if err := writeFileAtomic(path, data); err != nil {
			return nil, err
		}
		v.Path = path
	}
	r.encoders = append(r.encoders, v)
	return v, nil
}

// ActivateEncoder makes encoder id the serving encoder (atomic swap; the
// CURRENT_ENC pointer is durably updated first for persistent stores).
func (r *Registry) ActivateEncoder(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.findEncoder(id)
	if v == nil {
		return fmt.Errorf("registry: unknown encoder version %d", id)
	}
	if r.dir != "" {
		if err := writeFileAtomic(filepath.Join(r.dir, "CURRENT_ENC"), []byte(fmt.Sprintf("%d\n", id))); err != nil {
			return err
		}
	}
	r.activeEnc.Store(v)
	return nil
}

// AddAndActivateEncoder stores an encoder blob and immediately serves it.
func (r *Registry) AddAndActivateEncoder(data []byte) (*EncoderVersion, error) {
	v, err := r.AddEncoder(data)
	if err != nil {
		return nil, err
	}
	if err := r.ActivateEncoder(v.ID); err != nil {
		return nil, err
	}
	return v, nil
}

// ActiveEncoder returns the serving encoder version, or nil. One atomic
// load, no locks.
func (r *Registry) ActiveEncoder() *EncoderVersion {
	return r.activeEnc.Load()
}

// PruneEncoders keeps the newest keep encoder versions plus the active one
// (keep <= 0 keeps everything). Returns removed ids in ascending order.
func (r *Registry) PruneEncoders(keep int) ([]int, error) {
	if keep <= 0 {
		return nil, nil
	}
	act := r.ActiveEncoder()
	r.mu.Lock()
	defer r.mu.Unlock()
	protected := map[int]bool{}
	if act != nil {
		protected[act.ID] = true
	}
	for i := len(r.encoders) - keep; i < len(r.encoders); i++ {
		if i >= 0 {
			protected[r.encoders[i].ID] = true
		}
	}
	var removed []int
	var kept []*EncoderVersion
	var firstErr error
	for _, v := range r.encoders {
		if protected[v.ID] {
			kept = append(kept, v)
			continue
		}
		if v.Path != "" {
			if err := os.Remove(v.Path); err != nil && !os.IsNotExist(err) {
				if firstErr == nil {
					firstErr = fmt.Errorf("registry: pruning encoder v%04d: %w", v.ID, err)
				}
				kept = append(kept, v)
				continue
			}
		}
		removed = append(removed, v.ID)
	}
	r.encoders = kept
	return removed, firstErr
}

// SaveWorkloadEmbedding persists the reference workload embedding
// (atomically; no-op for memory-only registries). The learning loop writes
// it at every promotion so sibling tenants can compare workloads without
// materializing this one.
func (r *Registry) SaveWorkloadEmbedding(we *embed.WorkloadEmbedding) error {
	if r.dir == "" || we == nil {
		return nil
	}
	data, err := json.Marshal(we)
	if err != nil {
		return fmt.Errorf("registry: encoding workload embedding: %w", err)
	}
	return writeFileAtomic(filepath.Join(r.dir, "workload.emb"), data)
}

// Provenance records where a warm-started tenant's first champion came
// from — written once at seeding, never overwritten by later promotions.
type Provenance struct {
	// SeededFrom is the source tenant id ("default" for the default
	// tenant's registry).
	SeededFrom string `json:"seeded_from"`
	// SourceVersion is the source registry's classifier version that was
	// copied; SourceEncoder the encoder version that scored the match.
	SourceVersion int `json:"source_version"`
	SourceEncoder int `json:"source_encoder,omitempty"`
	// Similarity is the cosine similarity between the two workload
	// embeddings at seeding time.
	Similarity float64   `json:"similarity"`
	At         time.Time `json:"at"`
}

// SaveProvenance persists warm-start provenance next to the registry blobs.
func (r *Registry) SaveProvenance(p *Provenance) error {
	if r.dir == "" || p == nil {
		return nil
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encoding provenance: %w", err)
	}
	return writeFileAtomic(filepath.Join(r.dir, "provenance.json"), data)
}

// LoadProvenance reads warm-start provenance; (nil, nil) when none exists.
func (r *Registry) LoadProvenance() (*Provenance, error) {
	if r.dir == "" {
		return nil, nil
	}
	return PeekProvenance(r.dir)
}

// The Peek helpers below read one artifact from a registry directory
// without opening (and validating) the whole store — the cross-tenant
// warm-start scan touches every sibling tenant and must stay cheap and
// isolated: a corrupt candidate is skipped, not fatal.

// PeekWorkloadEmbedding reads a directory's persisted workload embedding.
func PeekWorkloadEmbedding(dir string) (*embed.WorkloadEmbedding, error) {
	data, err := os.ReadFile(filepath.Join(dir, "workload.emb"))
	if err != nil {
		return nil, err
	}
	var we embed.WorkloadEmbedding
	if err := json.Unmarshal(data, &we); err != nil {
		return nil, fmt.Errorf("registry: corrupt workload embedding in %s: %w", dir, err)
	}
	if we.Dim <= 0 || len(we.Vector) != we.Dim {
		return nil, fmt.Errorf("registry: workload embedding in %s has inconsistent dims", dir)
	}
	return &we, nil
}

// PeekActiveEncoder reads and validates a directory's CURRENT_ENC encoder,
// returning the encoder, its version id, and the raw blob (ready for
// AddAndActivateEncoder in another registry).
func PeekActiveEncoder(dir string) (*embed.Encoder, int, []byte, error) {
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT_ENC"))
	if err != nil {
		return nil, 0, nil, err
	}
	id, err := strconv.Atoi(strings.TrimSpace(string(cur)))
	if err != nil || id <= 0 {
		return nil, 0, nil, fmt.Errorf("registry: corrupt CURRENT_ENC in %s", dir)
	}
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("v%04d.enc", id)))
	if err != nil {
		return nil, 0, nil, err
	}
	enc, err := embed.LoadEncoder(bytes.NewReader(data))
	if err != nil {
		return nil, 0, nil, err
	}
	return enc, id, data, nil
}

// PeekActiveModel reads a directory's CURRENT classifier blob, validating
// it before returning the raw bytes (ready for AddAndActivate elsewhere)
// and the version id it had in its home registry.
func PeekActiveModel(dir string) ([]byte, int, error) {
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		return nil, 0, err
	}
	id, err := strconv.Atoi(strings.TrimSpace(string(cur)))
	if err != nil || id <= 0 {
		return nil, 0, fmt.Errorf("registry: corrupt CURRENT in %s", dir)
	}
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("v%04d.clf", id)))
	if err != nil {
		return nil, 0, err
	}
	if _, err := models.LoadClassifier(bytes.NewReader(data)); err != nil {
		return nil, 0, fmt.Errorf("registry: invalid model in %s: %w", dir, err)
	}
	return data, id, nil
}

// PeekProvenance reads a directory's warm-start provenance; (nil, nil) when
// none was written.
func PeekProvenance(dir string) (*Provenance, error) {
	data, err := os.ReadFile(filepath.Join(dir, "provenance.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var p Provenance
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("registry: corrupt provenance in %s: %w", dir, err)
	}
	return &p, nil
}
