package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/expdata"
	"repro/internal/feat"
)

// encoderBlob trains a tiny encoder on synthetic telemetry and serializes
// it — the fixture every encoder-store test admits.
func encoderBlob(t *testing.T, seed int64) ([]byte, *embed.Encoder) {
	t.Helper()
	var recs []expdata.PlanRecord
	for i, m := range []float64{100, 200, 400, 800, 820, 900} {
		recs = append(recs, expdata.PlanRecord{
			DB: "db", Query: fmt.Sprintf("q%d", i), Fingerprint: uint64(i + 1),
			Cost: m, EstTotalCost: m,
			Channels: map[string][]float64{
				"EstNodeCost":                   {m},
				"LeafWeightEstBytesWeightedSum": {m / 2},
			},
		})
	}
	samples := embed.RecordSamples(recs, feat.DefaultChannels())
	inputs := make([][]float64, len(samples))
	for i, s := range samples {
		inputs[i] = embed.PlanInput(feat.DefaultChannels(), s.Vectors, s.Est)
	}
	enc, err := embed.Train(inputs, embed.Config{Seed: seed, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := embed.SaveEncoder(enc, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), enc
}

// TestEncoderStoreLifecycle: add → activate → persist → reopen → peek.
func TestEncoderStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveEncoder() != nil {
		t.Fatal("fresh registry has an active encoder")
	}
	blob, _ := encoderBlob(t, 1)
	v, err := r.AddAndActivateEncoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 1 || r.ActiveEncoder() == nil || r.ActiveEncoder().ID != 1 {
		t.Fatalf("active encoder after add = %+v", r.ActiveEncoder())
	}
	blob2, _ := encoderBlob(t, 2)
	if _, err := r.AddEncoder(blob2); err != nil {
		t.Fatal(err)
	}
	if r.ActiveEncoder().ID != 1 {
		t.Fatal("Add without Activate must not change the active encoder")
	}

	we := &embed.WorkloadEmbedding{Dim: 2, Vector: []float64{0.6, 0.8}, Records: 6, Templates: 6, EncoderVersion: 1}
	if err := r.SaveWorkloadEmbedding(we); err != nil {
		t.Fatal(err)
	}
	prov := &Provenance{SeededFrom: "acme", SourceVersion: 3, SourceEncoder: 1, Similarity: 0.93, At: time.Now().UTC()}
	if err := r.SaveProvenance(prov); err != nil {
		t.Fatal(err)
	}

	// Reopen restores encoder versions and the CURRENT_ENC pointer.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ActiveEncoder() == nil || r2.ActiveEncoder().ID != 1 {
		t.Fatalf("reopened active encoder = %+v, want v1", r2.ActiveEncoder())
	}
	if r2.findEncoder(2) == nil {
		t.Fatal("reopened registry lost encoder v2")
	}

	// Peek reads the same artifacts without a full Open.
	gotWE, err := PeekWorkloadEmbedding(dir)
	if err != nil || !reflect.DeepEqual(gotWE, we) {
		t.Fatalf("PeekWorkloadEmbedding = %+v, %v", gotWE, err)
	}
	enc, id, blob, err := PeekActiveEncoder(dir)
	if err != nil || id != 1 || enc.Dim() != embed.DefaultDim || len(blob) == 0 {
		t.Fatalf("PeekActiveEncoder = dim %v id %d blob %d err %v", enc, id, len(blob), err)
	}
	gotProv, err := PeekProvenance(dir)
	if err != nil || gotProv == nil || gotProv.SeededFrom != "acme" || gotProv.SourceVersion != 3 {
		t.Fatalf("PeekProvenance = %+v, %v", gotProv, err)
	}
}

// TestEncoderStoreRejectsHostile: invalid blobs never enter the store.
func TestEncoderStoreRejectsHostile(t *testing.T) {
	r, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddEncoder([]byte("junk")); err == nil {
		t.Fatal("junk encoder blob admitted")
	}
	if r.ActiveEncoder() != nil || len(r.encoders) != 0 {
		t.Fatal("rejected blob leaked into the store")
	}
}

// TestEncoderPrune: retention keeps the newest + active encoders.
func TestEncoderPrune(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := encoderBlob(t, 1)
	for i := 0; i < 4; i++ {
		if _, err := r.AddEncoder(blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ActivateEncoder(1); err != nil {
		t.Fatal(err)
	}
	removed, err := r.PruneEncoders(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(removed, []int{2, 3}) {
		t.Fatalf("removed = %v, want [2 3] (v1 active, v4 newest)", removed)
	}
	if _, err := os.Stat(filepath.Join(dir, "v0002.enc")); !os.IsNotExist(err) {
		t.Fatal("pruned encoder blob still on disk")
	}
}

// TestPeekActiveModelMissing: peeks on an empty directory fail cleanly.
func TestPeekActiveModelMissing(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := PeekActiveModel(dir); err == nil {
		t.Fatal("peek on empty dir succeeded")
	}
	if _, _, _, err := PeekActiveEncoder(dir); err == nil {
		t.Fatal("encoder peek on empty dir succeeded")
	}
	if p, err := PeekProvenance(dir); err != nil || p != nil {
		t.Fatalf("provenance peek on empty dir = %+v, %v, want nil, nil", p, err)
	}
}
