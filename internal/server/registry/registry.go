// Package registry is the tuning service's versioned model store: uploaded
// classifier blobs are validated, assigned monotonically increasing version
// numbers, persisted to a directory (when one is configured), and activated
// with an atomic hot-swap so concurrent inference never observes a
// half-loaded model.
//
// On-disk layout (all writes go through temp-file + rename, so a crash
// mid-write never corrupts the store):
//
//	<dir>/v0001.clf   classifier blob (models.SaveClassifier format)
//	<dir>/v0002.clf
//	<dir>/CURRENT     the active version number in ASCII, e.g. "2\n"
//
// Reopening a directory restores every version and the CURRENT pointer, so
// a restarted server resumes serving the same model.
package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
)

// Registry metric handles: store occupancy (versions and bytes) and the
// retention policy's activity (see DESIGN.md §11).
var (
	mRegVersions = obs.G("server.registry.versions")
	mRegBytes    = obs.G("server.registry.store_bytes")
	mRegPruned   = obs.C("server.registry.pruned")
)

// Version is one immutable registry entry: a validated classifier and its
// provenance.
type Version struct {
	// ID is the 1-based version number (v0001.clf has ID 1).
	ID int
	// Path is the blob location, empty for memory-only registries.
	Path string
	// Size is the blob size in bytes.
	Size int64
	// AddedAt is the upload (or load-from-disk) time.
	AddedAt time.Time
	// Clf is the deserialized, ready-to-serve classifier.
	Clf *models.Classifier
}

// Info is the JSON-friendly view of a Version (without the model itself).
type Info struct {
	ID      int       `json:"id"`
	Size    int64     `json:"size"`
	AddedAt time.Time `json:"added_at"`
	Active  bool      `json:"active"`
}

// Registry is a concurrency-safe versioned model store. Reads of the
// active model (the inference hot path) are a single atomic pointer load;
// uploads and activations serialize on a mutex.
type Registry struct {
	dir string

	mu       sync.Mutex
	versions []*Version
	encoders []*EncoderVersion

	active    atomic.Pointer[Version]
	activeEnc atomic.Pointer[EncoderVersion]
}

// Open opens (creating if needed) a registry rooted at dir. An empty dir
// yields a memory-only registry: versions live for the process lifetime and
// nothing is persisted. With a directory, existing versions are loaded and
// the CURRENT pointer re-activated; a corrupt blob fails Open rather than
// silently serving a partial store.
func Open(dir string) (*Registry, error) {
	r := &Registry{dir: dir}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: reading %s: %w", dir, err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".clf") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".clf"))
		if err != nil || id <= 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		path := r.blobPath(id)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("registry: reading %s: %w", path, err)
		}
		clf, err := models.LoadClassifier(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("registry: loading %s: %w", path, err)
		}
		info, _ := os.Stat(path)
		added := time.Now()
		if info != nil {
			added = info.ModTime()
		}
		r.versions = append(r.versions, &Version{
			ID: id, Path: path, Size: int64(len(data)), AddedAt: added, Clf: clf,
		})
	}
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err == nil {
		id, perr := strconv.Atoi(strings.TrimSpace(string(cur)))
		if perr != nil {
			return nil, fmt.Errorf("registry: corrupt CURRENT file: %q", cur)
		}
		v := r.find(id)
		if v == nil {
			return nil, fmt.Errorf("registry: CURRENT points at missing version %d", id)
		}
		r.active.Store(v)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("registry: reading CURRENT: %w", err)
	}
	if err := r.loadEncoders(entries); err != nil {
		return nil, err
	}
	r.updateGauges()
	return r, nil
}

// updateGauges publishes the store's occupancy; callers hold r.mu (or run
// during single-threaded Open).
func (r *Registry) updateGauges() {
	var bytes int64
	for _, v := range r.versions {
		bytes += v.Size
	}
	mRegVersions.Set(float64(len(r.versions)))
	mRegBytes.Set(float64(bytes))
}

func (r *Registry) blobPath(id int) string {
	return filepath.Join(r.dir, fmt.Sprintf("v%04d.clf", id))
}

// find returns the version with the given id; callers hold r.mu or run
// during single-threaded Open.
func (r *Registry) find(id int) *Version {
	for _, v := range r.versions {
		if v.ID == id {
			return v
		}
	}
	return nil
}

// Add validates a classifier blob and stores it as the next version,
// without activating it. The blob must round-trip through
// models.LoadClassifier; anything else is rejected.
func (r *Registry) Add(data []byte) (*Version, error) {
	clf, err := models.LoadClassifier(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("registry: invalid model: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := 1
	if n := len(r.versions); n > 0 {
		id = r.versions[n-1].ID + 1
	}
	v := &Version{ID: id, Size: int64(len(data)), AddedAt: time.Now(), Clf: clf}
	if r.dir != "" {
		path := r.blobPath(id)
		if err := writeFileAtomic(path, data); err != nil {
			return nil, err
		}
		v.Path = path
	}
	r.versions = append(r.versions, v)
	r.updateGauges()
	return v, nil
}

// Prune enforces the retention policy: the newest keep versions survive,
// plus the active version and any pinned ids (the learning loop pins the
// rollback target), whatever their age. Everything else is dropped from
// memory and, for persistent registries, deleted from disk. keep <= 0 keeps
// everything. Returns the removed version ids in ascending order.
//
// A blob whose deletion fails stays in the store (and in the returned
// error) rather than leaving memory and disk disagreeing.
func (r *Registry) Prune(keep int, pin ...int) ([]int, error) {
	if keep <= 0 {
		return nil, nil
	}
	act := r.Active()
	r.mu.Lock()
	defer r.mu.Unlock()
	protected := map[int]bool{}
	if act != nil {
		protected[act.ID] = true
	}
	for _, id := range pin {
		protected[id] = true
	}
	for i := len(r.versions) - keep; i < len(r.versions); i++ {
		if i >= 0 {
			protected[r.versions[i].ID] = true
		}
	}
	var removed []int
	var kept []*Version
	var firstErr error
	for _, v := range r.versions {
		if protected[v.ID] {
			kept = append(kept, v)
			continue
		}
		if v.Path != "" {
			if err := os.Remove(v.Path); err != nil && !os.IsNotExist(err) {
				if firstErr == nil {
					firstErr = fmt.Errorf("registry: pruning v%04d: %w", v.ID, err)
				}
				kept = append(kept, v)
				continue
			}
		}
		removed = append(removed, v.ID)
	}
	r.versions = kept
	mRegPruned.Add(int64(len(removed)))
	r.updateGauges()
	return removed, firstErr
}

// Activate makes version id the serving model. The swap is atomic: readers
// see either the previous fully-loaded model or the new one, never a
// partial state. With a directory, the CURRENT pointer is durably updated
// (temp file + rename) before the in-memory swap.
func (r *Registry) Activate(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.find(id)
	if v == nil {
		return fmt.Errorf("registry: unknown version %d", id)
	}
	if r.dir != "" {
		if err := writeFileAtomic(filepath.Join(r.dir, "CURRENT"), []byte(fmt.Sprintf("%d\n", id))); err != nil {
			return err
		}
	}
	r.active.Store(v)
	return nil
}

// AddAndActivate stores a blob and immediately makes it the serving model.
func (r *Registry) AddAndActivate(data []byte) (*Version, error) {
	v, err := r.Add(data)
	if err != nil {
		return nil, err
	}
	if err := r.Activate(v.ID); err != nil {
		return nil, err
	}
	return v, nil
}

// Active returns the serving version, or nil when no model is activated.
// This is the inference hot path: one atomic load, no locks.
func (r *Registry) Active() *Version {
	return r.active.Load()
}

// List returns the stored versions in id order, flagging the active one.
func (r *Registry) List() []Info {
	act := r.Active()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.versions))
	for _, v := range r.versions {
		out = append(out, Info{
			ID: v.ID, Size: v.Size, AddedAt: v.AddedAt,
			Active: act != nil && act.ID == v.ID,
		})
	}
	return out
}

// writeFileAtomic writes data to path via a temp file in the same directory
// and an atomic rename.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: temp file in %s: %w", dir, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("registry: renaming into %s: %w", path, err)
	}
	return nil
}
