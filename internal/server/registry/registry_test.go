package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/feat"
	"repro/internal/models"
)

// testBlob builds a small valid classifier blob. Training uses synthetic
// vectors so the registry tests stay fast and self-contained.
func testBlob(t testing.TB, seed int64) []byte {
	t.Helper()
	clf := models.NewClassifier(feat.Default(), models.RF(5, seed), 0.2)
	const n, dim = 60, 6
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((i*7+j*13+int(seed))%19) / 19
		}
		X[i] = v
		y[i] = i % 3
	}
	if err := clf.TrainVectors(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := models.SaveClassifier(clf, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAddActivateList(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if r.Active() != nil {
		t.Fatal("fresh registry has an active model")
	}
	v1, err := r.Add(testBlob(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID != 1 {
		t.Fatalf("first version id = %d", v1.ID)
	}
	// Adding does not activate.
	if r.Active() != nil {
		t.Fatal("Add activated implicitly")
	}
	if err := r.Activate(1); err != nil {
		t.Fatal(err)
	}
	if got := r.Active(); got == nil || got.ID != 1 || got.Clf == nil {
		t.Fatalf("active = %+v", got)
	}
	v2, err := r.AddAndActivate(testBlob(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != 2 || r.Active().ID != 2 {
		t.Fatalf("hot swap failed: v2=%d active=%d", v2.ID, r.Active().ID)
	}
	infos := r.List()
	if len(infos) != 2 || infos[0].Active || !infos[1].Active {
		t.Fatalf("list = %+v", infos)
	}
	if err := r.Activate(99); err == nil {
		t.Fatal("activating an unknown version succeeded")
	}
}

func TestRejectsInvalidBlob(t *testing.T) {
	r, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add([]byte("garbage")); err == nil {
		t.Fatal("garbage blob accepted")
	}
	blob := testBlob(t, 3)
	if _, err := r.Add(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestMemoryOnlyRegistry(t *testing.T) {
	r, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.AddAndActivate(testBlob(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v.Path != "" {
		t.Fatalf("memory registry wrote %s", v.Path)
	}
	if r.Active().ID != v.ID {
		t.Fatal("activation failed")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddAndActivate(testBlob(t, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(testBlob(t, 6)); err != nil {
		t.Fatal(err)
	}
	// On-disk layout: versioned blobs + CURRENT pointer.
	if _, err := os.Stat(filepath.Join(dir, "v0001.clf")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "v0002.clf")); err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil || string(cur) != "1\n" {
		t.Fatalf("CURRENT = %q, err %v", cur, err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Active(); got == nil || got.ID != 1 {
		t.Fatalf("reopen lost the active model: %+v", got)
	}
	if n := len(r2.List()); n != 2 {
		t.Fatalf("reopen found %d versions, want 2", n)
	}
	// New versions continue the id sequence.
	v3, err := r2.Add(testBlob(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if v3.ID != 3 {
		t.Fatalf("post-reopen id = %d, want 3", v3.ID)
	}
}

func TestOpenRejectsCorruptStore(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "v0001.clf"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt blob did not fail Open")
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "CURRENT"), []byte("7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2); err == nil {
		t.Fatal("dangling CURRENT did not fail Open")
	}
}

// TestConcurrentReadDuringHotSwap exercises the atomic-swap contract under
// -race: readers continuously load the active model while a writer uploads
// and activates new versions; every observed model must be fully loaded.
func TestConcurrentReadDuringHotSwap(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddAndActivate(testBlob(t, 10)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := r.Active()
				if v == nil || v.Clf == nil || !v.Clf.Trained() {
					panic(fmt.Sprintf("observed half-loaded version %+v", v))
				}
			}
		}()
	}
	for i := int64(0); i < 5; i++ {
		if _, err := r.AddAndActivate(testBlob(t, 20+i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := r.Active().ID; got != 6 {
		t.Fatalf("final active = %d, want 6", got)
	}
}

func TestPruneRetention(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := r.Add(testBlob(t, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Activate(3); err != nil {
		t.Fatal(err)
	}
	// keep=2 protects the newest {5,6}, the active v3, and the pinned v2
	// (a rollback target): only v1 and v4 go.
	removed, err := r.Prune(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(removed) != "[1 4]" {
		t.Fatalf("removed = %v, want [1 4]", removed)
	}
	var ids []int
	for _, info := range r.List() {
		ids = append(ids, info.ID)
	}
	if fmt.Sprint(ids) != "[2 3 5 6]" {
		t.Fatalf("surviving versions = %v, want [2 3 5 6]", ids)
	}
	// Blobs really leave the disk; survivors really stay.
	for _, id := range []int{1, 4} {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("v%04d.clf", id))); !os.IsNotExist(err) {
			t.Fatalf("pruned blob v%04d still on disk (err=%v)", id, err)
		}
	}
	for _, id := range []int{2, 3, 5, 6} {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("v%04d.clf", id))); err != nil {
			t.Fatalf("surviving blob v%04d missing: %v", id, err)
		}
	}
	// The active model keeps serving, and pruned registries stay usable.
	if act := r.Active(); act == nil || act.ID != 3 {
		t.Fatalf("active after prune = %v, want v3", act)
	}
	if err := r.Activate(2); err != nil {
		t.Fatalf("activating the pinned rollback target: %v", err)
	}
}

func TestPruneKeepZeroIsNoop(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Add(testBlob(t, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := r.Prune(0)
	if err != nil || removed != nil {
		t.Fatalf("Prune(0) = (%v, %v), want a no-op", removed, err)
	}
	if len(r.List()) != 3 {
		t.Fatalf("versions = %d, want all 3 kept", len(r.List()))
	}
}

func TestPruneMemoryOnly(t *testing.T) {
	r, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Add(testBlob(t, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := r.Prune(1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(removed) != "[1 2 3]" {
		t.Fatalf("removed = %v, want [1 2 3]", removed)
	}
	if got := r.List(); len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("survivors = %v, want just v4", got)
	}
}
