package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/expdata"
	"repro/internal/learn"
)

// learnTelemetryJSONL renders synthetic telemetry as a /v1/telemetry body:
// templates×5 plan records per template whose measured cost tracks the
// channel mass (invert flips the relationship, making an earlier model
// stale). fpBase keeps fingerprints unique across payloads.
func learnTelemetryJSONL(t testing.TB, templates int, fpBase uint64, invert bool) string {
	t.Helper()
	var sb strings.Builder
	fp := fpBase
	for tm := 0; tm < templates; tm++ {
		for _, mass := range []float64{100, 200, 400, 800, 820} {
			fp++
			cost := mass
			if invert {
				cost = 1000 - mass
			}
			rec := expdata.PlanRecord{
				DB:           "db",
				Query:        fmt.Sprintf("q%02d", tm),
				TemplateHash: uint64(1000 + tm),
				Fingerprint:  fp,
				Cost:         cost,
				EstTotalCost: mass,
				Channels: map[string][]float64{
					"EstNodeCost":                   {mass},
					"LeafWeightEstBytesWeightedSum": {mass / 2},
				},
			}
			line, err := json.Marshal(&rec)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// pollLearnIdle polls /v1/learn/status until the loop has completed at
// least wantCycles cycles and is idle.
func pollLearnIdle(t testing.TB, base string, wantCycles int) learn.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st learn.Status
		if code := doJSON(t, http.MethodGet, base+"/v1/learn/status", nil, &st); code != http.StatusOK {
			t.Fatalf("GET /v1/learn/status: %d", code)
		}
		if st.Cycles >= wantCycles && st.State == "idle" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("learning cycle never finished")
	return learn.Status{}
}

// TestServeLearnRoundTrip is the serving-side acceptance test for the
// online loop: ingest telemetry over HTTP, trigger a cycle, watch a
// challenger get trained and promoted, make the workload drift, and watch
// a second promotion supersede the first — all through the public API.
func TestServeLearnRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.TelemetryPath = filepath.Join(dir, "telemetry.jsonl")
		c.RegistryKeep = 2
		c.Learn = learn.Options{
			Seed:             11,
			Trees:            15,
			Window:           20,
			MinRecords:       10,
			MinTrainPairs:    8,
			MinEvalPairs:     4,
			RollbackMinPairs: 8,
		}
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Before any telemetry: status is idle and empty, and a trigger on thin
	// data completes as a skip rather than failing.
	st := pollLearnIdle(t, base, 0)
	if st.Cycles != 0 || st.ActiveModel != 0 {
		t.Fatalf("fresh status = %+v, want no cycles and no model", st)
	}

	// Round trip 1: ingest → trigger → challenger promoted as v1.
	var tel map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/telemetry",
		strings.NewReader(learnTelemetryJSONL(t, 4, 0, false)), &tel); code != http.StatusOK {
		t.Fatalf("telemetry ingest: %d (%v)", code, tel)
	}
	var trig map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/learn/trigger", nil, &trig); code != http.StatusAccepted {
		t.Fatalf("trigger: %d (%v)", code, trig)
	}
	st = pollLearnIdle(t, base, 1)
	if st.Promotions != 1 || st.ActiveModel != 1 {
		t.Fatalf("after cycle 1: %+v, want v1 promoted and active", st)
	}
	if st.LastCycle == nil || st.LastCycle.Decision != learn.DecisionPromoted {
		t.Fatalf("last cycle = %+v, want a promotion report", st.LastCycle)
	}
	if st.LastCycle.Challenger == nil || st.LastCycle.Challenger.Accuracy < 0.55 {
		t.Fatalf("challenger report = %+v, want shadow accuracy above the floor", st.LastCycle.Challenger)
	}

	// The promoted model serves immediately: classify with comparator
	// "model" now answers instead of 409ing.
	var cls classifyResponse
	body := `{"query":"q6","indexes_b":[{"table":"lineitem","key":["l_shipdate"]}]}`
	if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(body), &cls); code != http.StatusOK {
		t.Fatalf("classify with the promoted model: %d", code)
	}
	if cls.ModelVersion != 1 {
		t.Fatalf("classify used model v%d, want the promoted v1", cls.ModelVersion)
	}

	// Round trip 2: the workload inverts; the fresh window makes the v1
	// champion stale and a new challenger wins the shadow evaluation.
	if code := doJSON(t, http.MethodPost, base+"/v1/telemetry",
		strings.NewReader(learnTelemetryJSONL(t, 4, 1000, true)), &tel); code != http.StatusOK {
		t.Fatalf("telemetry ingest 2: %d", code)
	}
	if code := doJSON(t, http.MethodPost, base+"/v1/learn/trigger",
		strings.NewReader(`{"reason":"drift-suspected"}`), &trig); code != http.StatusAccepted {
		t.Fatalf("trigger 2: %d", code)
	}
	st = pollLearnIdle(t, base, 2)
	if st.Promotions != 2 || st.ActiveModel != 2 {
		t.Fatalf("after cycle 2: %+v, want v2 promoted and active", st)
	}
	if st.LastCycle.Trigger != "drift-suspected" {
		t.Fatalf("trigger label = %q, want the caller's reason", st.LastCycle.Trigger)
	}
	// A promotion over a real prior is monitored, with v1 as the target.
	if st.Monitoring == nil || st.Monitoring.PriorVersion != 1 || st.Monitoring.PromotedVersion != 2 {
		t.Fatalf("monitoring = %+v, want v2 watched with v1 as rollback target", st.Monitoring)
	}

	// Model lifecycle endpoints see the loop's promotions.
	var ml struct {
		Versions []json.RawMessage `json:"versions"`
		Active   int               `json:"active"`
	}
	if code := doJSON(t, http.MethodGet, base+"/v1/models", nil, &ml); code != http.StatusOK {
		t.Fatalf("model list: %d", code)
	}
	if ml.Active != 2 {
		t.Fatalf("active model = %d, want the promoted v2", ml.Active)
	}
}

// TestServeLearnEmbedding drives the workload-embedding surface: 409 before
// any encoder exists, then — after a promotion in an embedding drift mode —
// a finite unit-norm embedding with the encoder version and a near-zero
// drift distance against the just-captured reference.
func TestServeLearnEmbedding(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Learn = learn.Options{
			Seed:             11,
			Trees:            15,
			Window:           20,
			MinRecords:       10,
			MinTrainPairs:    8,
			MinEvalPairs:     4,
			RollbackMinPairs: 8,
			DriftMode:        learn.DriftModeBoth,
			EmbedEpochs:      10,
		}
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	var errResp apiError
	if code := doJSON(t, http.MethodGet, base+"/v1/learn/embedding", nil, &errResp); code != http.StatusConflict {
		t.Fatalf("embedding before any encoder: %d, want 409", code)
	}

	var tel, trig map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/telemetry",
		strings.NewReader(learnTelemetryJSONL(t, 4, 0, false)), &tel); code != http.StatusOK {
		t.Fatalf("telemetry ingest: %d", code)
	}
	if code := doJSON(t, http.MethodPost, base+"/v1/learn/trigger", nil, &trig); code != http.StatusAccepted {
		t.Fatalf("trigger: %d", code)
	}
	st := pollLearnIdle(t, base, 1)
	if st.Promotions != 1 {
		t.Fatalf("after cycle 1: %+v, want a promotion", st)
	}

	var emb struct {
		Tenant         string  `json:"tenant"`
		DriftMode      string  `json:"drift_mode"`
		EncoderVersion int     `json:"encoder_version"`
		Distance       float64 `json:"distance"`
		Embedding      *struct {
			Dim    int       `json:"dim"`
			Vector []float64 `json:"vector"`
		} `json:"embedding"`
	}
	if code := doJSON(t, http.MethodGet, base+"/v1/learn/embedding", nil, &emb); code != http.StatusOK {
		t.Fatalf("embedding after promotion: %d", code)
	}
	if emb.Tenant != "default" || emb.DriftMode != learn.DriftModeBoth || emb.EncoderVersion != 1 {
		t.Fatalf("embedding response = %+v, want default tenant, both mode, encoder v1", emb)
	}
	if emb.Embedding == nil || emb.Embedding.Dim <= 0 || len(emb.Embedding.Vector) != emb.Embedding.Dim {
		t.Fatalf("embedding vector malformed: %+v", emb.Embedding)
	}
	var norm float64
	for _, v := range emb.Embedding.Vector {
		norm += v * v
	}
	if norm == 0 || norm != norm || emb.Distance > 1e-6 {
		t.Fatalf("embedding norm² = %v, distance = %v; want unit norm and ~0 drift", norm, emb.Distance)
	}
}
