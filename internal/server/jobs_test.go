package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, j *job) JobState {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.status(); st.State.Terminal() {
			return st.State
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not terminate; state %s", j.id, j.status().State)
	return ""
}

func TestJobRunsToDone(t *testing.T) {
	m := newJobs(1, 4, nil)
	defer m.drain(context.Background())
	j, err := m.submit("default", func(ctx context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, j); st != JobDone {
		t.Fatalf("state = %s", st)
	}
	if got := j.status().Result; got != 42 {
		t.Fatalf("result = %v", got)
	}
}

func TestJobFailure(t *testing.T) {
	m := newJobs(1, 4, nil)
	defer m.drain(context.Background())
	j, err := m.submit("default", func(ctx context.Context) (any, error) { return nil, errors.New("boom") })
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, j); st != JobFailed {
		t.Fatalf("state = %s", st)
	}
	if j.status().Error != "boom" {
		t.Fatalf("error = %q", j.status().Error)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := newJobs(1, 4, nil)
	defer m.drain(context.Background())
	started := make(chan struct{})
	j, err := m.submit("default", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // deterministic mid-run block until cancelled
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !m.cancelJob(j) {
		t.Fatal("cancel of a running job returned false")
	}
	if st := waitState(t, j); st != JobCancelled {
		t.Fatalf("state = %s", st)
	}
	// Cancelling a terminal job reports false.
	if m.cancelJob(j) {
		t.Fatal("cancel of a finished job returned true")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newJobs(1, 4, nil)
	defer m.drain(context.Background())
	release := make(chan struct{})
	blocker, err := m.submit("default", func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.submit("default", func(ctx context.Context) (any, error) { return "ran", nil })
	if err != nil {
		t.Fatal(err)
	}
	if !m.cancelJob(queued) {
		t.Fatal("cancel of a queued job returned false")
	}
	if st := queued.status().State; st != JobCancelled {
		t.Fatalf("queued job state after cancel = %s", st)
	}
	close(release)
	if st := waitState(t, blocker); st != JobDone {
		t.Fatalf("blocker state = %s", st)
	}
	// The worker must skip the cancelled job, not run it.
	time.Sleep(10 * time.Millisecond)
	if queued.status().Result != nil {
		t.Fatal("cancelled queued job still ran")
	}
}

func TestQueueBackpressure(t *testing.T) {
	m := newJobs(1, 1, nil)
	defer m.drain(context.Background())
	started, release := make(chan struct{}), make(chan struct{})
	running, err := m.submit("default", func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds the running job; the queue is empty
	if _, err := m.submit("default", func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	if _, err := m.submit("default", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	close(release)
	waitState(t, running)
}

func TestDrainWaitsAndRejectsNewWork(t *testing.T) {
	m := newJobs(2, 4, nil)
	slow, err := m.submit("default", func(ctx context.Context) (any, error) {
		time.Sleep(50 * time.Millisecond)
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := slow.status().State; st != JobDone {
		t.Fatalf("drain returned before job finished: %s", st)
	}
	if _, err := m.submit("default", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after drain: %v", err)
	}
	// Draining twice is a no-op.
	if err := m.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	m := newJobs(1, 4, nil)
	j, err := m.submit("default", func(ctx context.Context) (any, error) {
		<-ctx.Done() // never finishes on its own
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v", err)
	}
	if st := j.status().State; st != JobCancelled {
		t.Fatalf("straggler state = %s, want cancelled", st)
	}
}
