package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/opt"
	"repro/internal/engine/stats"
	"repro/internal/feat"
	"repro/internal/models"
	"repro/internal/tenant"
	"repro/internal/tuner"
	"repro/internal/util"
	"repro/internal/workload"
)

// sharedWorkload caches the test database across tests (building data and
// statistics dominates test time).
var (
	workloadOnce sync.Once
	sharedW      *workload.Workload
)

func testWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	workloadOnce.Do(func() {
		sharedW = workload.TPCH("tpch-srv", 2000, 9)
	})
	return sharedW
}

// newTestServer assembles a Server over the shared workload. Each call gets
// its own what-if cache, executor, registry, and job pool.
func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	w := testWorkload(t)
	ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), 512, 32)
	cfg := Config{
		Workload:  w,
		WhatIf:    opt.NewWhatIf(opt.New(w.Schema, ds)),
		Exec:      exec.New(w.DB),
		TunerOpts: tuner.Options{Parallelism: 2},
		ModelDir:  t.TempDir(),
		Workers:   1,
		QueueSize: 4,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testModelBlob trains a tiny RF classifier on synthetic vectors and
// serializes it — a valid upload payload without a collection run.
func testModelBlob(t testing.TB, seed int64) []byte {
	t.Helper()
	clf := models.NewClassifier(feat.Default(), models.RF(5, seed), 0.2)
	const n, dim = 60, 6
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((i*7+j*13+int(seed))%19) / 19
		}
		X[i] = v
		y[i] = i % 3
	}
	if err := clf.TrainVectors(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := models.SaveClassifier(clf, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t testing.TB, method, url string, body io.Reader, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: non-JSON response (%d): %s", method, url, resp.StatusCode, data)
		}
	}
	return resp.StatusCode
}

// pollJob polls a job endpoint until the job is terminal.
func pollJob(t testing.TB, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never terminated", id)
	return JobStatus{}
}

// TestServeJobLifecycle is the end-to-end acceptance test: start the
// daemon, upload + activate a model, run the synchronous endpoints, submit
// a tune job and poll it to completion, cancel a second job mid-run, ingest
// telemetry, and shut down gracefully.
func TestServeJobLifecycle(t *testing.T) {
	s := newTestServer(t, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	// Health before any state.
	var health map[string]any
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" || health["model"] != nil {
		t.Fatalf("healthz = %v", health)
	}

	// Classify without a model: 409 with a pointer to the fix.
	classifyBody := `{"query":"q6","indexes_b":[{"table":"lineitem","key":["l_shipdate"]}]}`
	var apiErr map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(classifyBody), &apiErr); code != http.StatusConflict {
		t.Fatalf("classify without model: %d (%v)", code, apiErr)
	}

	// Upload + activate a model.
	var up map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/models", bytes.NewReader(testModelBlob(t, 1)), &up); code != http.StatusCreated {
		t.Fatalf("model upload: %d (%v)", code, up)
	}
	if up["version"] != float64(1) || up["activated"] != true {
		t.Fatalf("upload response = %v", up)
	}

	// A malformed upload must be rejected without disturbing the active model.
	if code := doJSON(t, http.MethodPost, base+"/v1/models", strings.NewReader("garbage"), &apiErr); code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage upload: %d", code)
	}

	// Classify now answers from the model.
	var cls classifyResponse
	if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(classifyBody), &cls); code != http.StatusOK {
		t.Fatalf("classify: %d", code)
	}
	if cls.ModelVersion != 1 || cls.Comparator != "model" {
		t.Fatalf("classify = %+v", cls)
	}
	switch cls.Verdict {
	case "improvement", "regression", "unsure":
	default:
		t.Fatalf("verdict = %q", cls.Verdict)
	}

	// Plan under a hypothetical index.
	var pl planResponse
	planBody := `{"query":"q6","indexes":[{"table":"lineitem","key":["l_shipdate"],"include":["l_discount","l_quantity","l_price"]}]}`
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(planBody), &pl); code != http.StatusOK {
		t.Fatalf("plan: %d", code)
	}
	if pl.EstCost <= 0 || pl.Plan == "" || len(pl.Indexes) != 1 {
		t.Fatalf("plan response = %+v", pl)
	}

	// Ad-hoc SQL and bad requests.
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(`{"sql":"SELECT COUNT(*) FROM lineitem"}`), &pl); code != http.StatusOK {
		t.Fatalf("ad-hoc plan: %d", code)
	}
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(`{"query":"nope"}`), &apiErr); code != http.StatusBadRequest {
		t.Fatalf("unknown query: %d", code)
	}
	if code := doJSON(t, http.MethodPost, base+"/v1/plan", strings.NewReader(`{"query":"q6","indexes":[{"table":"lineitem"}]}`), &apiErr); code != http.StatusBadRequest {
		t.Fatalf("keyless btree: %d", code)
	}

	// Submit a small tune job and poll to completion.
	var sub JobStatus
	tuneBody := `{"queries":["q1","q6"],"max_new_indexes":2}`
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs/tune", strings.NewReader(tuneBody), &sub); code != http.StatusAccepted {
		t.Fatalf("tune submit: %d (%+v)", code, sub)
	}
	st := pollJob(t, base, sub.ID)
	if st.State != JobDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	res, ok := st.Result.(map[string]any)
	if !ok {
		t.Fatalf("result = %#v", st.Result)
	}
	if res["est_cost"].(float64) <= 0 || res["model_version"] != float64(1) {
		t.Fatalf("tune result = %v", res)
	}

	// A job with the per-table / column-fraction budgets and compression:
	// must complete and respect the tighter budgets.
	budgetBody := `{"max_indexes_per_table":1,"max_column_fraction":0.1,"compress":true}`
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs/tune", strings.NewReader(budgetBody), &sub); code != http.StatusAccepted {
		t.Fatalf("budgeted tune submit: %d (%+v)", code, sub)
	}
	st = pollJob(t, base, sub.ID)
	if st.State != JobDone {
		t.Fatalf("budgeted job finished %s: %s", st.State, st.Error)
	}
	if res, ok := st.Result.(map[string]any); ok {
		perTable := map[string]int{}
		if ixs, ok := res["new_indexes"].([]any); ok {
			for _, v := range ixs {
				id := v.(string)
				table := id[:strings.IndexByte(id, '/')]
				if perTable[table]++; perTable[table] > 1 {
					t.Fatalf("per-table budget violated in job result: %v", ixs)
				}
			}
		}
	}

	// Cancel a second job mid-run: the whole workload is slow enough that
	// the DELETE lands while the tuner is probing; context cancellation
	// must unwind it to "cancelled", not "failed".
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs/tune", strings.NewReader(`{}`), &sub); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	var cancelled JobStatus
	if code := doJSON(t, http.MethodDelete, base+"/v1/jobs/"+sub.ID, nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel: %d", code)
	}
	st = pollJob(t, base, sub.ID)
	if st.State != JobCancelled {
		t.Fatalf("cancelled job state = %s (%s)", st.State, st.Error)
	}
	// Cancelling again conflicts.
	if code := doJSON(t, http.MethodDelete, base+"/v1/jobs/"+sub.ID, nil, &apiErr); code != http.StatusConflict {
		t.Fatalf("double cancel: %d", code)
	}
	if code := doJSON(t, http.MethodDelete, base+"/v1/jobs/job-999999", nil, &apiErr); code != http.StatusNotFound {
		t.Fatalf("cancel unknown: %d", code)
	}

	// Telemetry ingest.
	telemetry := `{"db":"tpch-srv","query":"q6","cost":12.5,"est_total_cost":20,"channels":{}}
{"db":"tpch-srv","query":"q6","cost":9.5,"est_total_cost":11,"channels":{}}`
	var tel map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/telemetry", strings.NewReader(telemetry), &tel); code != http.StatusOK {
		t.Fatalf("telemetry: %d (%v)", code, tel)
	}
	if tel["accepted"] != float64(2) {
		t.Fatalf("telemetry response = %v", tel)
	}
	if code := doJSON(t, http.MethodPost, base+"/v1/telemetry", strings.NewReader("{broken"), &apiErr); code != http.StatusBadRequest {
		t.Fatalf("malformed telemetry: %d", code)
	}

	// Health reflects everything that happened.
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["model"] != float64(1) || health["telemetry"] != float64(2) {
		t.Fatalf("final healthz = %v", health)
	}

	// Graceful shutdown: port released, jobs drained.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

// TestServeQueueBackpressure drives the bounded queue to 429.
func TestServeQueueBackpressure(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueSize = 1 })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + addr

	// Deterministically saturate the pool: one job blocks the only worker,
	// a second fills the one queue slot. (Real tune jobs finish too quickly
	// to hold the queue open reliably.) Both unblock on ctx cancellation,
	// which Shutdown's drain triggers.
	block := func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	first, err := s.jobs.submit(tenant.DefaultID, block)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker owns the first job, so the queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for first.status().State == JobQueued {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := s.jobs.submit(tenant.DefaultID, block)
	if err != nil {
		t.Fatal(err)
	}
	// The HTTP layer must surface the full queue as 429.
	var apiErr map[string]any
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs/tune", strings.NewReader(`{}`), &apiErr); code != http.StatusTooManyRequests {
		t.Fatalf("submit to a full queue: %d, want 429", code)
	}
	// Free the pool so shutdown stays fast.
	doJSON(t, http.MethodDelete, base+"/v1/jobs/"+first.id, nil, nil)
	doJSON(t, http.MethodDelete, base+"/v1/jobs/"+second.id, nil, nil)
}

// TestConcurrentSubmissionsAndHotSwap races job submissions and classify
// traffic against registry hot-swaps (run under -race in CI).
func TestConcurrentSubmissionsAndHotSwap(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 2; c.QueueSize = 64 })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + addr
	if code := doJSON(t, http.MethodPost, base+"/v1/models", bytes.NewReader(testModelBlob(t, 1)), nil); code != http.StatusCreated {
		t.Fatalf("initial upload: %d", code)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	// Hot-swapper: keeps replacing the active model.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(2); i <= 6; i++ {
			if code := doJSON(t, http.MethodPost, base+"/v1/models", bytes.NewReader(testModelBlob(t, i)), nil); code != http.StatusCreated {
				errCh <- fmt.Errorf("swap upload: %d", code)
			}
		}
	}()
	// Classifiers: every request must see a complete model.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := `{"query":"q6","indexes_b":[{"table":"lineitem","key":["l_shipdate"]}]}`
			for i := 0; i < 10; i++ {
				var cls classifyResponse
				if code := doJSON(t, http.MethodPost, base+"/v1/classify", strings.NewReader(body), &cls); code != http.StatusOK {
					errCh <- fmt.Errorf("classify: %d", code)
					return
				}
				if cls.ModelVersion < 1 || cls.ModelVersion > 6 {
					errCh <- fmt.Errorf("classify saw version %d", cls.ModelVersion)
					return
				}
			}
		}()
	}
	// Submitters: concurrent small tune jobs.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				var st JobStatus
				code := doJSON(t, http.MethodPost, base+"/v1/jobs/tune", strings.NewReader(`{"queries":["q6"],"max_new_indexes":1}`), &st)
				if code != http.StatusAccepted && code != http.StatusTooManyRequests {
					errCh <- fmt.Errorf("submit: %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
