package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/expdata"
	"repro/internal/obs"
)

var mTelemetryRecords = obs.C("server.telemetry.records")

// telemetrySink accumulates execution telemetry posted to /v1/telemetry —
// the §7 feedback loop's ingest side. Records are buffered in memory (the
// retraining working set) and, when a path is configured, appended durably
// as JSON lines in the ExportTelemetry format so a later
// TrainClassifierFromTelemetry run can consume the file directly.
type telemetrySink struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	bw      *bufio.Writer
	records []expdata.PlanRecord
	total   int64
}

// openTelemetrySink opens (appending to) path, or a memory-only sink when
// path is empty.
func openTelemetrySink(path string) (*telemetrySink, error) {
	s := &telemetrySink{path: path}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: opening telemetry sink %s: %w", path, err)
	}
	s.f = f
	s.bw = bufio.NewWriter(f)
	return s, nil
}

// append adds validated records to the sink.
func (s *telemetrySink) append(recs []expdata.PlanRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw != nil {
		enc := json.NewEncoder(s.bw)
		for i := range recs {
			if err := enc.Encode(&recs[i]); err != nil {
				return fmt.Errorf("server: appending telemetry: %w", err)
			}
		}
	}
	s.records = append(s.records, recs...)
	s.total += int64(len(recs))
	mTelemetryRecords.Add(int64(len(recs)))
	return nil
}

// snapshot copies the in-memory record buffer (for retraining jobs).
func (s *telemetrySink) snapshot() []expdata.PlanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]expdata.PlanRecord(nil), s.records...)
}

// count returns the number of records ingested since startup.
func (s *telemetrySink) count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// flush forces buffered records to disk (no-op for memory sinks).
func (s *telemetrySink) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// close flushes and closes the sink.
func (s *telemetrySink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
