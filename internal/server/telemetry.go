package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/expdata"
	"repro/internal/obs"
)

var (
	mTelemetryRecords   = obs.C("server.telemetry.records")
	mTelemetryRotations = obs.C("server.telemetry.rotations")
	mTelemetrySkipped   = obs.C("server.telemetry.snapshot_skipped")
	mTelemetrySegments  = obs.G("server.telemetry.segments")
	mTelemetryBytes     = obs.G("server.telemetry.segment_bytes")
)

// Telemetry sink bounds. Segments rotate by size so the JSONL file can no
// longer grow without limit: the current segment lives at <path>, rotated
// ones at <path>.1 (newest) .. <path>.N-1 (oldest), and the oldest segment
// is deleted on rotation. The retained window — what snapshot() hands the
// learning loop — is therefore at most maxSegments × maxSegmentBytes.
const (
	defaultSegmentBytes = 8 << 20
	defaultMaxSegments  = 4
	// memRecordCap bounds the in-memory buffer of a path-less sink (tests,
	// ephemeral servers): the oldest records are dropped past the cap, like
	// a rotated-away segment.
	memRecordCap = 100_000
)

// telemetrySink accumulates execution telemetry posted to /v1/telemetry —
// the §7 feedback loop's ingest side. With a path configured, records are
// appended durably as JSON lines in the ExportTelemetry format, rotated by
// size across a bounded number of segments; without one they live in a
// bounded in-memory buffer. snapshot() returns the full retained window
// (across all segments) for the learning loop, and total() the monotonic
// record count, so callers can align snapshot records with ingest ordinals.
type telemetrySink struct {
	mu           sync.Mutex
	path         string
	segmentBytes int64
	maxSegments  int

	f        *os.File
	bw       *bufio.Writer
	curBytes int64

	records []expdata.PlanRecord // memory-only mode
	dropped int64                // memory-mode records discarded past the cap
	count   int64                // records ingested or found on disk at open
}

// openTelemetrySink opens (appending to) path, or a memory-only sink when
// path is empty. Pre-existing segments are counted so total() stays aligned
// with what snapshot() returns across restarts.
func openTelemetrySink(path string, segmentBytes int64, maxSegments int) (*telemetrySink, error) {
	if segmentBytes <= 0 {
		segmentBytes = defaultSegmentBytes
	}
	if maxSegments <= 0 {
		maxSegments = defaultMaxSegments
	}
	s := &telemetrySink{path: path, segmentBytes: segmentBytes, maxSegments: maxSegments}
	if path == "" {
		return s, nil
	}
	for _, seg := range s.segmentPaths() {
		recs, _ := readTelemetrySegment(seg)
		s.count += int64(len(recs))
	}
	if err := s.openCurrent(); err != nil {
		return nil, err
	}
	return s, nil
}

// segmentPaths lists every possible segment location, oldest first, ending
// with the current segment.
func (s *telemetrySink) segmentPaths() []string {
	out := make([]string, 0, s.maxSegments)
	for i := s.maxSegments - 1; i >= 1; i-- {
		out = append(out, fmt.Sprintf("%s.%d", s.path, i))
	}
	return append(out, s.path)
}

// openCurrent opens the live segment for appending; callers hold s.mu (or
// run during single-threaded construction).
func (s *telemetrySink) openCurrent() error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening telemetry sink %s: %w", s.path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("server: stat telemetry sink %s: %w", s.path, err)
	}
	// A crash mid-write can leave a torn line without a trailing newline;
	// appending directly after it would corrupt the next record too.
	// Terminate the torn line so only the torn record is lost.
	if size := info.Size(); size > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], size-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return fmt.Errorf("server: terminating torn telemetry line in %s: %w", s.path, err)
			}
		}
	}
	s.f = f
	s.bw = bufio.NewWriter(f)
	s.curBytes = info.Size()
	mTelemetryBytes.Set(float64(s.curBytes))
	return nil
}

// rotate shifts <path>.i → <path>.i+1 (dropping the oldest), moves the
// current segment to <path>.1, and opens a fresh current segment. Called
// with s.mu held and the writer flushed.
func (s *telemetrySink) rotate() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("server: closing telemetry segment: %w", err)
	}
	for i := s.maxSegments - 1; i >= 2; i-- {
		from := fmt.Sprintf("%s.%d", s.path, i-1)
		to := fmt.Sprintf("%s.%d", s.path, i)
		if _, err := os.Stat(from); err == nil {
			if err := os.Rename(from, to); err != nil {
				return fmt.Errorf("server: rotating telemetry segment %s: %w", from, err)
			}
		}
	}
	if s.maxSegments > 1 {
		if err := os.Rename(s.path, s.path+".1"); err != nil {
			return fmt.Errorf("server: rotating telemetry segment %s: %w", s.path, err)
		}
	} else if err := os.Remove(s.path); err != nil {
		return fmt.Errorf("server: truncating telemetry sink %s: %w", s.path, err)
	}
	mTelemetryRotations.Inc()
	if err := s.openCurrent(); err != nil {
		return err
	}
	n := 0
	for _, seg := range s.segmentPaths() {
		if _, err := os.Stat(seg); err == nil {
			n++
		}
	}
	mTelemetrySegments.Set(float64(n))
	return nil
}

// append adds validated records to the sink, rotating the on-disk segment
// when it crosses the size threshold.
func (s *telemetrySink) append(recs []expdata.PlanRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw != nil {
		for i := range recs {
			line, err := json.Marshal(&recs[i])
			if err != nil {
				return fmt.Errorf("server: appending telemetry: %w", err)
			}
			line = append(line, '\n')
			if _, err := s.bw.Write(line); err != nil {
				return fmt.Errorf("server: appending telemetry: %w", err)
			}
			s.curBytes += int64(len(line))
			if s.curBytes >= s.segmentBytes {
				if err := s.bw.Flush(); err != nil {
					return fmt.Errorf("server: flushing telemetry: %w", err)
				}
				if err := s.rotate(); err != nil {
					return err
				}
			}
		}
		mTelemetryBytes.Set(float64(s.curBytes))
	} else {
		s.records = append(s.records, recs...)
		if over := len(s.records) - memRecordCap; over > 0 {
			s.records = append(s.records[:0:0], s.records[over:]...)
			s.dropped += int64(over)
		}
	}
	s.count += int64(len(recs))
	mTelemetryRecords.Add(int64(len(recs)))
	return nil
}

// snapshot returns the retained telemetry window (oldest first) and the
// monotonic total of records ever ingested. The window's last record has
// ordinal total-1, so a caller holding a total watermark can slice exactly
// the records ingested after it. Disk-backed sinks read every live segment;
// unparseable lines (a torn write from a crash) are skipped and counted.
func (s *telemetrySink) snapshot() ([]expdata.PlanRecord, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return append([]expdata.PlanRecord(nil), s.records...), s.count
	}
	if err := s.bw.Flush(); err != nil {
		mTelemetrySkipped.Inc()
		return nil, s.count
	}
	var out []expdata.PlanRecord
	for _, seg := range s.segmentPaths() {
		recs, skipped := readTelemetrySegment(seg)
		mTelemetrySkipped.Add(int64(skipped))
		out = append(out, recs...)
	}
	return out, s.count
}

// readTelemetrySegment decodes one JSONL segment line by line, skipping
// (and counting) lines that do not parse. A missing segment is empty.
func readTelemetrySegment(path string) (recs []expdata.PlanRecord, skipped int) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec expdata.PlanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if sc.Err() != nil {
		skipped++
	}
	return recs, skipped
}

// total returns the monotonic number of records ingested (including records
// found on disk when the sink opened).
func (s *telemetrySink) total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// flush forces buffered records to disk (no-op for memory sinks).
func (s *telemetrySink) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// close flushes and closes the sink.
func (s *telemetrySink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
