package server

import (
	"errors"
	"net/http"

	"repro/internal/learn"
	"repro/internal/server/registry"
)

// ---- online learning endpoints ----

// learnTriggerRequest is the optional POST /v1/learn/trigger body.
type learnTriggerRequest struct {
	// Reason labels the cycle in status reports (default "manual").
	Reason string `json:"reason,omitempty"`
}

// handleLearnStatus reports the tenant's learning loop state: cycle
// counters, the last cycle's full report, and any promotion awaiting live
// confirmation.
func (s *Server) handleLearnStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tenantFrom(r).Loop.Status())
}

// learnEmbeddingResponse wraps the loop's embedding status with the tenant
// id and any warm-start provenance the registry carries.
type learnEmbeddingResponse struct {
	Tenant string `json:"tenant"`
	*learn.EmbeddingStatus
	Provenance *registry.Provenance `json:"provenance,omitempty"`
}

// handleLearnEmbedding reports the tenant's workload-embedding plane: the
// active encoder version, the current window's embedding, the reference
// captured at the last promotion, and the drift distance between them.
// 409 until a promotion has trained an encoder (or in pure z mode, where
// no encoder is ever trained).
func (s *Server) handleLearnEmbedding(w http.ResponseWriter, r *http.Request) {
	tn := tenantFrom(r)
	st, err := tn.Loop.Embedding()
	if err != nil {
		if errors.Is(err, learn.ErrNoEncoder) {
			writeErr(w, http.StatusConflict,
				"tenant %q has no plan encoder yet (drift-mode z, or no promotion so far)", tn.ID)
			return
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	prov, _ := tn.Reg.LoadProvenance()
	writeJSON(w, http.StatusOK, learnEmbeddingResponse{
		Tenant: tn.ID, EmbeddingStatus: st, Provenance: prov,
	})
}

// handleLearnTrigger starts a learning cycle in the background. Cycles are
// serialized: a trigger while one runs answers 409 and the caller polls
// GET /v1/learn/status.
func (s *Server) handleLearnTrigger(w http.ResponseWriter, r *http.Request) {
	req := learnTriggerRequest{Reason: "manual"}
	if r.ContentLength != 0 {
		if !readJSON(w, r, &req) {
			return
		}
		if req.Reason == "" {
			req.Reason = "manual"
		}
	}
	if err := tenantFrom(r).Loop.TriggerAsync(req.Reason); err != nil {
		if errors.Is(err, learn.ErrCycleRunning) {
			writeErr(w, http.StatusConflict, "%v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"triggered": true, "reason": req.Reason,
	})
}
