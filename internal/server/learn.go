package server

import (
	"errors"
	"net/http"

	"repro/internal/learn"
)

// ---- online learning endpoints ----

// learnTriggerRequest is the optional POST /v1/learn/trigger body.
type learnTriggerRequest struct {
	// Reason labels the cycle in status reports (default "manual").
	Reason string `json:"reason,omitempty"`
}

// handleLearnStatus reports the tenant's learning loop state: cycle
// counters, the last cycle's full report, and any promotion awaiting live
// confirmation.
func (s *Server) handleLearnStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tenantFrom(r).Loop.Status())
}

// handleLearnTrigger starts a learning cycle in the background. Cycles are
// serialized: a trigger while one runs answers 409 and the caller polls
// GET /v1/learn/status.
func (s *Server) handleLearnTrigger(w http.ResponseWriter, r *http.Request) {
	req := learnTriggerRequest{Reason: "manual"}
	if r.ContentLength != 0 {
		if !readJSON(w, r, &req) {
			return
		}
		if req.Reason == "" {
			req.Reason = "manual"
		}
	}
	if err := tenantFrom(r).Loop.TriggerAsync(req.Reason); err != nil {
		if errors.Is(err, learn.ErrCycleRunning) {
			writeErr(w, http.StatusConflict, "%v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"triggered": true, "reason": req.Reason,
	})
}
