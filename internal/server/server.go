// Package server is the tuning service daemon behind `aimai serve`: a JSON
// HTTP API exposing the reproduction's components as a long-lived process —
// the operational end state the paper sketches in §5/§7, where index tuning
// runs continuously against a live workload instead of as one-shot CLI
// invocations.
//
// The API has three planes:
//
//   - Synchronous inference: POST /v1/plan (what-if planning under a
//     hypothetical configuration), POST /v1/classify (plan-pair verdict
//     from the active classifier), GET /healthz, GET /metrics.
//   - Asynchronous tuning: POST /v1/jobs/tune enqueues a workload-tuning
//     job onto a bounded worker pool; GET /v1/jobs/{id} polls status and
//     result, DELETE /v1/jobs/{id} cancels (threading context.Context into
//     the tuner's probe loops), and a full queue answers 429.
//   - Model + telemetry lifecycle: POST /v1/models uploads, validates, and
//     atomically activates a classifier (see internal/server/registry);
//     POST /v1/telemetry appends execution records for later retraining,
//     closing the paper's feedback loop.
//
// Every endpoint is multi-tenant (see internal/tenant): requests resolve a
// tenant via the /v1/t/{tenant}/... path prefix or the X-Tenant header
// (default: the "default" tenant, preserving single-tenant behaviour), and
// operate on that tenant's model registry, telemetry partition, and
// learning loop. Per-tenant token buckets gate the synchronous plane and
// per-tenant bounded queues with weighted-round-robin draining gate the
// tuning plane, so saturation answers 429 per tenant, not globally.
//
// Graceful shutdown drains the job queue (SIGTERM → stop accepting →
// finish or cancel jobs → flush telemetry) so a restarting service loses
// neither running work nor ingested records.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/opt"
	"repro/internal/engine/query"
	"repro/internal/expdata"
	"repro/internal/learn"
	"repro/internal/models"
	"repro/internal/obs"
	sqlparse "repro/internal/sql"
	"repro/internal/tenant"
	"repro/internal/tuner"
	"repro/internal/workload"
)

// HTTP-plane metric handles (see DESIGN.md §8/§14).
var (
	mHTTPRequests      = obs.C("server.http.requests")
	mHTTPErrors        = obs.C("server.http.errors")
	mHTTPLatency       = obs.H("server.http.latency")
	mModelsActive      = obs.C("server.models.activated")
	mAdmissionRejected = obs.C("server.admission.rejected")
	mTenantBadID       = obs.C("server.tenant.bad_id")
)

// maxBodyBytes bounds every request body; model uploads are the largest
// legitimate payload (a 100-tree forest serializes to a few MB).
const maxBodyBytes = 64 << 20

// Config wires a Server to an opened database and bounds its resources.
type Config struct {
	// Workload is the served database: schema, data, and named queries.
	Workload *workload.Workload
	// WhatIf is the caching what-if planning facade (concurrency-safe).
	WhatIf *opt.WhatIf
	// Exec executes plans; used by tuning jobs via the continuous driver.
	Exec *exec.Executor

	// TunerOpts configure tuning jobs (Parallelism bounds each job's
	// what-if probe fan-out).
	TunerOpts tuner.Options

	// ModelDir is the default tenant's versioned model registry directory;
	// empty keeps its models in memory only.
	ModelDir string
	// RegistryKeep bounds each tenant's registry after promotions and
	// uploads: the active version, its predecessor (the rollback target),
	// and the newest RegistryKeep versions survive pruning. 0 keeps
	// everything.
	RegistryKeep int
	// TelemetryPath appends the default tenant's ingested telemetry as JSON
	// lines; empty keeps records in memory only.
	TelemetryPath string
	// TelemetrySegmentBytes / TelemetrySegments bound each tenant's on-disk
	// telemetry window: segments rotate at TelemetrySegmentBytes and at most
	// TelemetrySegments are retained (0 = defaults).
	TelemetrySegmentBytes int64
	TelemetrySegments     int

	// TenantsDir is the data root for non-default tenants: tenant t keeps
	// its registry at <TenantsDir>/<t>/models and telemetry at
	// <TenantsDir>/<t>/telemetry.jsonl. Empty keeps non-default tenants in
	// memory only.
	TenantsDir string
	// MaxActiveTenants bounds the materialized tenant set; the LRU idle
	// tenant is evicted (loop stopped, telemetry flushed) and reloaded on
	// its next request. Default 8.
	MaxActiveTenants int
	// TenantRate / TenantBurst configure each tenant's synchronous-plane
	// token bucket in requests/second (0 = no rate limiting).
	TenantRate  float64
	TenantBurst int
	// TenantWeights sets weighted-round-robin shares for the tuning-job
	// queues (absent tenants get weight 1).
	TenantWeights map[string]int
	// TenantIngestRate engages per-tenant telemetry sampling above this
	// many records/second (0 = never sample); sampled-out records are
	// compensated by weighting survivors, keeping learn-loop aggregates
	// unbiased.
	TenantIngestRate float64
	// WarmStartFloor is the minimum workload-embedding cosine similarity
	// for cross-tenant warm start (0 = default 0.80; negative disables).
	WarmStartFloor float64

	// Learn configures every tenant's online learning loop (GET
	// /v1/learn/status, POST /v1/learn/trigger; a background ticker when
	// Learn.Interval > 0).
	Learn learn.Options

	// Workers is the tuning-job worker pool size (default 1: tuning jobs
	// are internally parallel already via TunerOpts.Parallelism).
	Workers int
	// QueueSize bounds each tenant's queued tuning jobs; a full tenant
	// queue answers 429 (default 8).
	QueueSize int
	// RequestTimeout bounds synchronous request handling (default 30s).
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server is the tuning service. Create with New, serve via Handler (tests)
// or Start (owns a listener), stop with Shutdown.
type Server struct {
	cfg     Config
	tenants *tenant.Manager
	jobs    *jobs
	handler http.Handler

	reqSeq    atomic.Uint64
	reqPrefix string

	httpSrv *http.Server
	addr    string
}

// New validates cfg and assembles the service (default tenant materialized,
// worker pool started). The server is usable immediately via Handler.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload == nil || cfg.WhatIf == nil || cfg.Exec == nil {
		return nil, fmt.Errorf("server: Config needs Workload, WhatIf, and Exec")
	}
	mgr := tenant.NewManager(tenant.Config{
		Dir:                   cfg.TenantsDir,
		DefaultModelDir:       cfg.ModelDir,
		DefaultTelemetryPath:  cfg.TelemetryPath,
		MaxActive:             cfg.MaxActiveTenants,
		RegistryKeep:          cfg.RegistryKeep,
		TelemetrySegmentBytes: cfg.TelemetrySegmentBytes,
		TelemetrySegments:     cfg.TelemetrySegments,
		IngestRate:            cfg.TenantIngestRate,
		Learn:                 cfg.Learn,
		Rate:                  cfg.TenantRate,
		Burst:                 cfg.TenantBurst,
		WarmStartFloor:        cfg.WarmStartFloor,
	})
	// Materialize the default tenant eagerly so a corrupt model store or
	// unwritable telemetry path fails startup, not the first request.
	def, err := mgr.Acquire(tenant.DefaultID)
	if err != nil {
		return nil, err
	}
	mgr.Release(def)
	s := &Server{
		cfg:       cfg,
		tenants:   mgr,
		jobs:      newJobs(cfg.Workers, cfg.QueueSize, cfg.TenantWeights),
		reqPrefix: fmt.Sprintf("%06x", time.Now().UnixNano()&0xffffff),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.Default())
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("POST /v1/models", s.handleModelUpload)
	mux.HandleFunc("GET /v1/models", s.handleModelList)
	mux.HandleFunc("POST /v1/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/learn/status", s.handleLearnStatus)
	mux.HandleFunc("GET /v1/learn/embedding", s.handleLearnEmbedding)
	mux.HandleFunc("POST /v1/learn/trigger", s.handleLearnTrigger)
	mux.HandleFunc("POST /v1/jobs/tune", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.handler = s.instrument(
		http.TimeoutHandler(s.withTenant(mux), cfg.RequestTimeout, "request timed out"))
	return s, nil
}

// Handler returns the service's HTTP handler (for httptest servers).
func (s *Server) Handler() http.Handler { return s.handler }

// ---- middleware ----

type ctxKey int

const (
	tenantKey ctxKey = iota
	requestIDKey
)

// tenantFrom returns the request's resolved tenant (set by withTenant).
func tenantFrom(r *http.Request) *tenant.Tenant {
	t, _ := r.Context().Value(tenantKey).(*tenant.Tenant)
	return t
}

// RequestIDFrom returns the request's ID (set by instrument).
func RequestIDFrom(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// instrument is the outermost middleware: it assigns every request an
// X-Request-ID (honouring a client-supplied one), counts and times the
// request, stamps a trace span with the ID, and guarantees the JSON error
// envelope — any non-JSON error body produced below it (the mux's plain
// 404/405, the timeout handler's 503) is rewritten to apiError.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mHTTPRequests.Inc()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" || len(reqID) > 128 {
			reqID = fmt.Sprintf("req-%s-%06x", s.reqPrefix, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", reqID)
		sp := obs.Default().StartSpan("http.request").WithTag(reqID)
		ew := &envelopeWriter{ResponseWriter: w}
		start := mHTTPLatency.Start()
		next.ServeHTTP(ew, r.WithContext(context.WithValue(r.Context(), requestIDKey, reqID)))
		ew.finish()
		mHTTPLatency.Stop(start)
		if ew.status >= http.StatusBadRequest {
			mHTTPErrors.Inc()
		}
		sp.End()
	})
}

// envelopeWriter rewrites non-JSON error responses into the apiError
// envelope so clients can always json-decode failures: handlers below the
// middleware that write text (http.Error, TimeoutHandler) get converted;
// JSON responses pass through untouched.
type envelopeWriter struct {
	http.ResponseWriter
	status  int
	wrote   bool
	rewrite bool
	buf     bytes.Buffer
}

func (e *envelopeWriter) WriteHeader(code int) {
	if e.wrote {
		return
	}
	e.wrote = true
	e.status = code
	ct := e.Header().Get("Content-Type")
	if code >= http.StatusBadRequest && !strings.HasPrefix(ct, "application/json") {
		e.rewrite = true
		e.Header().Set("Content-Type", "application/json")
		e.Header().Del("Content-Length")
	}
	e.ResponseWriter.WriteHeader(code)
}

func (e *envelopeWriter) Write(b []byte) (int, error) {
	if !e.wrote {
		e.WriteHeader(http.StatusOK)
	}
	if e.rewrite {
		// Buffer the plain-text body; finish() emits it as JSON.
		e.buf.Write(b)
		return len(b), nil
	}
	return e.ResponseWriter.Write(b)
}

// finish flushes a rewritten error body as the JSON envelope.
func (e *envelopeWriter) finish() {
	if !e.wrote {
		e.status = http.StatusOK
		return
	}
	if !e.rewrite {
		return
	}
	msg := strings.TrimSpace(e.buf.String())
	if msg == "" {
		msg = http.StatusText(e.status)
	}
	data, _ := json.Marshal(apiError{Error: msg})
	_, _ = e.ResponseWriter.Write(append(data, '\n'))
}

// withTenant resolves the request's tenant — path prefix /v1/t/{tenant}/...
// (rewritten to the canonical /v1/... route) or the X-Tenant header, with
// the default tenant as fallback — validates the ID, materializes the
// tenant, and admits the request through the tenant's token bucket. The
// tenant rides the request context; the reference is released when the
// handler returns.
func (s *Server) withTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := tenant.DefaultID
		if h := r.Header.Get("X-Tenant"); h != "" {
			id = h
		}
		if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/t/"); ok {
			slash := strings.IndexByte(rest, '/')
			if slash <= 0 {
				writeErr(w, http.StatusNotFound, "tenant path needs /v1/t/{tenant}/...")
				return
			}
			id = rest[:slash]
			r = r.Clone(r.Context())
			r.URL.Path = "/v1" + rest[slash:]
		}
		if err := tenant.ValidateID(id); err != nil {
			mTenantBadID.Inc()
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		tn, err := s.tenants.Acquire(id)
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, "tenant %q unavailable: %v", id, err)
			return
		}
		defer s.tenants.Release(tn)
		// Admission control gates the API planes only; /healthz and
		// /metrics stay reachable for probes even when a tenant is
		// saturated.
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			if ok, retry := tn.Admit(time.Now()); !ok {
				mAdmissionRejected.Inc()
				secs := int(retry/time.Second) + 1
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeErr(w, http.StatusTooManyRequests,
					"tenant %q rate limit exceeded; retry in %ds", id, secs)
				return
			}
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey, tn)))
	})
}

// Start binds addr (":0" for an ephemeral port), serves in the background,
// and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.httpSrv = &http.Server{Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	s.addr = ln.Addr().String()
	return s.addr, nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string { return s.addr }

// TenantStats reports per-tenant serving-plane state for the shutdown
// summary and tests: materialized tenant IDs and queue depths.
func (s *Server) TenantStats() (active []string, queueDepths map[string]int) {
	return s.tenants.ActiveIDs(), s.jobs.sched.Depths()
}

// Shutdown stops the service gracefully: the listener closes, in-flight
// requests finish, the job queues drain (jobs still running when ctx
// expires are cancelled and awaited), and every tenant finalizes — learning
// loop stopped, telemetry flushed to disk. Safe to call without Start
// (tests using Handler directly).
func (s *Server) Shutdown(ctx context.Context) error {
	var first error
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	if err := s.jobs.drain(ctx); err != nil && first == nil {
		first = err
	}
	// Tenant finalization stops each loop before closing its sink (the
	// loop reads the sink).
	if err := s.tenants.Close(ctx); err != nil && first == nil {
		first = err
	}
	return first
}

// ---- request/response types ----

// IndexSpec is the wire form of an index definition.
type IndexSpec struct {
	Table string `json:"table"`
	// Kind is "btree" (default) or "columnstore".
	Kind string `json:"kind,omitempty"`
	// Key is the ordered B+ tree key (ignored for columnstore).
	Key []string `json:"key,omitempty"`
	// Include lists covering leaf columns (optional).
	Include []string `json:"include,omitempty"`
}

// toIndex validates a spec against the schema and builds the index.
func (s *Server) toIndex(spec IndexSpec) (*catalog.Index, error) {
	t := s.cfg.Workload.Schema.Table(spec.Table)
	if t == nil {
		return nil, fmt.Errorf("unknown table %q", spec.Table)
	}
	ix := &catalog.Index{Table: spec.Table}
	switch strings.ToLower(spec.Kind) {
	case "", "btree":
		ix.Kind = catalog.BTree
		if len(spec.Key) == 0 {
			return nil, fmt.Errorf("btree index on %q needs at least one key column", spec.Table)
		}
	case "columnstore":
		ix.Kind = catalog.Columnstore
		return ix, nil
	default:
		return nil, fmt.Errorf("unknown index kind %q", spec.Kind)
	}
	for _, c := range append(append([]string(nil), spec.Key...), spec.Include...) {
		if t.Column(c) == nil {
			return nil, fmt.Errorf("unknown column %s.%s", spec.Table, c)
		}
	}
	ix.KeyColumns = spec.Key
	ix.IncludedColumns = spec.Include
	return ix, nil
}

// toConfig builds a configuration from specs (empty specs = no indexes).
func (s *Server) toConfig(specs []IndexSpec) (*catalog.Configuration, error) {
	cfg := catalog.NewConfiguration()
	for _, spec := range specs {
		ix, err := s.toIndex(spec)
		if err != nil {
			return nil, err
		}
		cfg.Add(ix)
	}
	return cfg, nil
}

// resolveQuery resolves either a named workload query or ad-hoc SQL.
func (s *Server) resolveQuery(name, sql string) (*query.Query, error) {
	switch {
	case name != "" && sql != "":
		return nil, fmt.Errorf("give either query (a workload query name) or sql, not both")
	case name != "":
		q := s.cfg.Workload.Query(name)
		if q == nil {
			return nil, fmt.Errorf("unknown query %q", name)
		}
		return q, nil
	case sql != "":
		q, err := sqlparse.Parse(sql, s.cfg.Workload.Schema)
		if err != nil {
			return nil, err
		}
		q.Name = "adhoc"
		return q, nil
	default:
		return nil, fmt.Errorf("missing query or sql")
	}
}

// apiError is the uniform JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits the JSON error envelope; instrument counts errors by
// observing the response status, so writeErr stays side-effect free.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a JSON body, rejecting unknown fields so client typos
// fail loudly instead of silently tuning the wrong thing.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// ---- synchronous endpoints ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tn := tenantFrom(r)
	resp := map[string]any{
		"status":         "ok",
		"db":             s.cfg.Workload.Name,
		"queries":        len(s.cfg.Workload.Queries),
		"tenant":         tn.ID,
		"tenants_active": s.tenants.ActiveCount(),
		"jobs":           s.jobs.counts(tn.ID),
		"telemetry":      tn.Sink.Total(),
		"indexes_cached": len(s.cfg.Exec.CachedIndexes()),
	}
	if v := tn.Reg.Active(); v != nil {
		resp["model"] = v.ID
	} else {
		resp["model"] = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

type planRequest struct {
	// Query names a workload query; SQL gives an ad-hoc statement. Exactly
	// one must be set.
	Query   string      `json:"query,omitempty"`
	SQL     string      `json:"sql,omitempty"`
	Indexes []IndexSpec `json:"indexes,omitempty"`
	// Configs requests batched planning of the same query under many
	// configurations in one call (WhatIf.PlanBatch); the response carries
	// one result per configuration, in request order. Mutually exclusive
	// with the top-level Indexes.
	Configs [][]IndexSpec `json:"configs,omitempty"`
}

type planResponse struct {
	Query   string   `json:"query"`
	EstCost float64  `json:"est_cost"`
	Indexes []string `json:"indexes"`
	Plan    string   `json:"plan"`
}

type planConfigResult struct {
	EstCost float64  `json:"est_cost"`
	Indexes []string `json:"indexes"`
	Plan    string   `json:"plan"`
}

type planBatchResponse struct {
	Query string             `json:"query"`
	Plans []planConfigResult `json:"plans"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if !readJSON(w, r, &req) {
		return
	}
	q, err := s.resolveQuery(req.Query, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Configs) > 0 {
		if len(req.Indexes) > 0 {
			writeErr(w, http.StatusBadRequest, "indexes and configs are mutually exclusive")
			return
		}
		s.handlePlanBatch(w, q, req.Configs)
		return
	}
	cfg, err := s.toConfig(req.Indexes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := s.cfg.WhatIf.Plan(q, cfg)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "planning: %v", err)
		return
	}
	ids := make([]string, 0, cfg.Len())
	for _, ix := range cfg.Indexes() {
		ids = append(ids, ix.ID())
	}
	writeJSON(w, http.StatusOK, planResponse{
		Query: q.Name, EstCost: p.EstTotalCost, Indexes: ids, Plan: p.String(),
	})
}

func (s *Server) handlePlanBatch(w http.ResponseWriter, q *query.Query, specs [][]IndexSpec) {
	cfgs := make([]*catalog.Configuration, len(specs))
	for i, sp := range specs {
		cfg, err := s.toConfig(sp)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "config %d: %v", i, err)
			return
		}
		cfgs[i] = cfg
	}
	plans, err := s.cfg.WhatIf.PlanBatch(q, cfgs)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "planning: %v", err)
		return
	}
	out := make([]planConfigResult, len(plans))
	for i, p := range plans {
		ids := make([]string, 0, cfgs[i].Len())
		for _, ix := range cfgs[i].Indexes() {
			ids = append(ids, ix.ID())
		}
		out[i] = planConfigResult{EstCost: p.EstTotalCost, Indexes: ids, Plan: p.String()}
	}
	writeJSON(w, http.StatusOK, planBatchResponse{Query: q.Name, Plans: out})
}

type classifyRequest struct {
	Query    string      `json:"query,omitempty"`
	SQL      string      `json:"sql,omitempty"`
	IndexesA []IndexSpec `json:"indexes_a,omitempty"`
	IndexesB []IndexSpec `json:"indexes_b,omitempty"`
	// Pairs requests batched classification of many configuration pairs
	// for the same query: all verdicts come from one batched comparator
	// call. Mutually exclusive with the top-level indexes_a/indexes_b.
	Pairs []classifyPairSpec `json:"pairs,omitempty"`
	// Comparator selects the verdict source: "model" (default; requires an
	// activated classifier) or "optimizer" (the estimate-only baseline).
	Comparator string `json:"comparator,omitempty"`
}

type classifyPairSpec struct {
	IndexesA []IndexSpec `json:"indexes_a,omitempty"`
	IndexesB []IndexSpec `json:"indexes_b,omitempty"`
}

type classifyPairVerdict struct {
	Verdict  string  `json:"verdict"`
	EstCostA float64 `json:"est_cost_a"`
	EstCostB float64 `json:"est_cost_b"`
}

type classifyResponse struct {
	Query        string  `json:"query"`
	Verdict      string  `json:"verdict,omitempty"`
	Comparator   string  `json:"comparator"`
	ModelVersion int     `json:"model_version,omitempty"`
	EstCostA     float64 `json:"est_cost_a,omitempty"`
	EstCostB     float64 `json:"est_cost_b,omitempty"`
	// Verdicts holds the batched results, in request pair order.
	Verdicts []classifyPairVerdict `json:"verdicts,omitempty"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	q, err := s.resolveQuery(req.Query, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Pairs) > 0 && (len(req.IndexesA) > 0 || len(req.IndexesB) > 0) {
		writeErr(w, http.StatusBadRequest, "pairs is mutually exclusive with indexes_a/indexes_b")
		return
	}
	tn := tenantFrom(r)
	resp := classifyResponse{Query: q.Name}
	var cmp models.Comparator
	switch req.Comparator {
	case "", "model":
		v := tn.Reg.Active()
		if v == nil {
			writeErr(w, http.StatusConflict, "no model activated for tenant %q; upload one via POST /v1/models or pass comparator=optimizer", tn.ID)
			return
		}
		cmp = v.Clf
		resp.Comparator = "model"
		resp.ModelVersion = v.ID
	case "optimizer":
		cmp = models.NewOptimizerBaseline(s.cfg.TunerOpts.Alpha)
		resp.Comparator = "optimizer"
	default:
		writeErr(w, http.StatusBadRequest, "unknown comparator %q", req.Comparator)
		return
	}
	if len(req.Pairs) > 0 {
		// Batched classification: plan every pair, then produce all
		// verdicts with one batched comparator call.
		pairs := make([]models.PlanPair, len(req.Pairs))
		for i, spec := range req.Pairs {
			cfgA, err := s.toConfig(spec.IndexesA)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "pairs[%d].indexes_a: %v", i, err)
				return
			}
			cfgB, err := s.toConfig(spec.IndexesB)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "pairs[%d].indexes_b: %v", i, err)
				return
			}
			if pairs[i].P1, err = s.cfg.WhatIf.Plan(q, cfgA); err != nil {
				writeErr(w, http.StatusInternalServerError, "pairs[%d]: planning under indexes_a: %v", i, err)
				return
			}
			if pairs[i].P2, err = s.cfg.WhatIf.Plan(q, cfgB); err != nil {
				writeErr(w, http.StatusInternalServerError, "pairs[%d]: planning under indexes_b: %v", i, err)
				return
			}
		}
		verdicts := models.CompareAll(cmp, pairs, nil)
		resp.Verdicts = make([]classifyPairVerdict, len(pairs))
		for i, p := range pairs {
			resp.Verdicts[i] = classifyPairVerdict{
				Verdict:  verdicts[i].String(),
				EstCostA: p.P1.EstTotalCost,
				EstCostB: p.P2.EstTotalCost,
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	cfgA, err := s.toConfig(req.IndexesA)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "indexes_a: %v", err)
		return
	}
	cfgB, err := s.toConfig(req.IndexesB)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "indexes_b: %v", err)
		return
	}
	pA, err := s.cfg.WhatIf.Plan(q, cfgA)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "planning under indexes_a: %v", err)
		return
	}
	pB, err := s.cfg.WhatIf.Plan(q, cfgB)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "planning under indexes_b: %v", err)
		return
	}
	resp.Verdict = cmp.Compare(pA, pB).String()
	resp.EstCostA = pA.EstTotalCost
	resp.EstCostB = pB.EstTotalCost
	writeJSON(w, http.StatusOK, resp)
}

// ---- model registry endpoints ----

func (s *Server) handleModelUpload(w http.ResponseWriter, r *http.Request) {
	tn := tenantFrom(r)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading model blob: %v", err)
		return
	}
	prior := tn.Reg.Active()
	v, err := tn.Reg.AddAndActivate(data)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	mModelsActive.Inc()
	if s.cfg.RegistryKeep > 0 {
		pin := []int{}
		if prior != nil {
			pin = append(pin, prior.ID)
		}
		_, _ = tn.Reg.Prune(s.cfg.RegistryKeep, pin...)
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"version": v.ID, "activated": true, "size": v.Size, "tenant": tn.ID,
	})
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	tn := tenantFrom(r)
	resp := map[string]any{"versions": tn.Reg.List(), "tenant": tn.ID}
	if v := tn.Reg.Active(); v != nil {
		resp["active"] = v.ID
	} else {
		resp["active"] = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- telemetry ingest ----

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	tn := tenantFrom(r)
	recs, err := expdata.ImportTelemetry(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(recs) == 0 {
		writeErr(w, http.StatusBadRequest, "empty telemetry payload")
		return
	}
	stored, err := tn.Sink.Append(recs)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted": len(recs), "stored": stored,
		"total": tn.Sink.Total(), "sample_rate": tn.Sink.SampleRate(),
	})
}

// ---- asynchronous tuning jobs ----

type tuneRequest struct {
	// Queries names workload queries to tune (empty = the whole workload).
	Queries []string `json:"queries,omitempty"`
	// MaxNewIndexes / StorageBudget / MaxIndexesPerTable /
	// MaxColumnFraction override the server's tuner budgets for this job
	// (0 keeps the default).
	MaxNewIndexes      int     `json:"max_new_indexes,omitempty"`
	StorageBudget      int64   `json:"storage_budget,omitempty"`
	MaxIndexesPerTable int     `json:"max_indexes_per_table,omitempty"`
	MaxColumnFraction  float64 `json:"max_column_fraction,omitempty"`
	// Compress dedups the workload by query template into weighted
	// representatives before tuning (see tuner.CompressWorkload).
	Compress bool `json:"compress,omitempty"`
	// Comparator gates the search: "model" (default when one is active),
	// "optimizer", or "none" for the estimate-only classic tuner.
	Comparator string `json:"comparator,omitempty"`
}

// tuneResult is the JSON result of a finished tuning job.
type tuneResult struct {
	NewIndexes   []string `json:"new_indexes"`
	EstCost      float64  `json:"est_cost"`
	Queries      int      `json:"queries"`
	ModelVersion int      `json:"model_version,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	tn := tenantFrom(r)
	var req tuneRequest
	if !readJSON(w, r, &req) {
		return
	}
	qs := s.cfg.Workload.Queries
	if len(req.Queries) > 0 {
		qs = make([]*query.Query, 0, len(req.Queries))
		for _, name := range req.Queries {
			q := s.cfg.Workload.Query(name)
			if q == nil {
				writeErr(w, http.StatusBadRequest, "unknown query %q", name)
				return
			}
			qs = append(qs, q)
		}
	}
	// The comparator is captured at submission time, so a later eviction of
	// the tenant cannot pull the model out from under a queued job.
	var cmp models.Comparator
	modelVersion := 0
	switch req.Comparator {
	case "", "model":
		if v := tn.Reg.Active(); v != nil {
			cmp = v.Clf
			modelVersion = v.ID
		} else if req.Comparator == "model" {
			writeErr(w, http.StatusConflict, "no model activated for tenant %q", tn.ID)
			return
		}
	case "optimizer":
		cmp = models.NewOptimizerBaseline(s.cfg.TunerOpts.Alpha)
	case "none":
	default:
		writeErr(w, http.StatusBadRequest, "unknown comparator %q", req.Comparator)
		return
	}
	opts := s.cfg.TunerOpts
	if req.MaxNewIndexes > 0 {
		opts.MaxNewIndexes = req.MaxNewIndexes
	}
	if req.StorageBudget > 0 {
		opts.StorageBudget = req.StorageBudget
	}
	if req.MaxIndexesPerTable > 0 {
		opts.MaxIndexesPerTable = req.MaxIndexesPerTable
	}
	if req.MaxColumnFraction > 0 {
		opts.MaxColumnFraction = req.MaxColumnFraction
	}
	if req.Compress {
		opts.Compress = true
	}
	tnr := tuner.New(s.cfg.Workload.Schema, s.cfg.WhatIf, cmp, opts)
	j, err := s.jobs.submit(tn.ID, func(ctx context.Context) (any, error) {
		rec, err := tnr.TuneWorkload(ctx, qs, nil)
		if err != nil {
			return nil, err
		}
		res := tuneResult{EstCost: rec.EstCost, Queries: len(qs), ModelVersion: modelVersion, NewIndexes: []string{}}
		for _, ix := range rec.NewIndexes {
			res.NewIndexes = append(res.NewIndexes, ix.ID())
		}
		return res, nil
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "tenant %q job queue full (capacity %d)", tn.ID, s.cfg.QueueSize)
		return
	case errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	tn := tenantFrom(r)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list(tn.ID), "tenant": tn.ID})
}

// tenantJob looks a job up and enforces tenant ownership: a job is visible
// only to the tenant that submitted it.
func (s *Server) tenantJob(r *http.Request) *job {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil || j.tenant != tenantFrom(r).ID {
		return nil
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.tenantJob(r)
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.tenantJob(r)
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.jobs.cancelJob(j) {
		writeErr(w, http.StatusConflict, "job %s already finished (%s)", j.id, j.status().State)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}
