package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/learn"
	"repro/internal/tenant"
)

// doReq performs a request with optional headers and returns the response
// plus its full body, for header and byte-level assertions. When out is
// non-nil the body is also decoded as JSON.
func doReq(t testing.TB, method, url string, hdr map[string]string, body io.Reader, out any) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: non-JSON response (%d): %s", method, url, resp.StatusCode, data)
		}
	}
	return resp, data
}

// testLearnOptions is the fast learn sizing shared by the isolation tests;
// identical options (and seed) across servers and tenants make promoted
// models comparable byte for byte.
func testLearnOptions() learn.Options {
	return learn.Options{
		Seed:             11,
		Trees:            15,
		Window:           20,
		MinRecords:       10,
		MinTrainPairs:    8,
		MinEvalPairs:     4,
		RollbackMinPairs: 8,
	}
}

// pollTenantLearnIdle polls a tenant's learn status via the path prefix.
func pollTenantLearnIdle(t testing.TB, base, tenantID string, wantCycles int) learn.Status {
	t.Helper()
	url := base + "/v1/t/" + tenantID + "/learn/status"
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st learn.Status
		if resp, _ := doReq(t, http.MethodGet, url, nil, nil, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		if st.Cycles >= wantCycles && st.State == "idle" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("tenant %s learning cycle never finished", tenantID)
	return learn.Status{}
}

// TestServeTenantRoutingAndEnvelope pins tenant resolution (path prefix
// beats header beats default), ID validation at the edge, the X-Request-ID
// contract, and the JSON error envelope on paths that would otherwise
// write plain text (mux 404/405).
func TestServeTenantRoutingAndEnvelope(t *testing.T) {
	s := newTestServer(t, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + addr

	// Default tenant without any tenant signal.
	var health map[string]any
	doReq(t, http.MethodGet, base+"/healthz", nil, nil, &health)
	if health["tenant"] != tenant.DefaultID {
		t.Fatalf("healthz tenant = %v, want default", health["tenant"])
	}

	// Path-prefix routing rewrites to the canonical route.
	var ml map[string]any
	resp, _ := doReq(t, http.MethodGet, base+"/v1/t/acme/models", nil, nil, &ml)
	if resp.StatusCode != http.StatusOK || ml["tenant"] != "acme" {
		t.Fatalf("path-prefix routing: %d %v", resp.StatusCode, ml)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response missing X-Request-ID")
	}

	// Header routing.
	ml = nil
	doReq(t, http.MethodGet, base+"/v1/models", map[string]string{"X-Tenant": "beta"}, nil, &ml)
	if ml["tenant"] != "beta" {
		t.Fatalf("header routing: %v", ml)
	}

	// Path prefix wins over a conflicting header.
	ml = nil
	doReq(t, http.MethodGet, base+"/v1/t/acme/models", map[string]string{"X-Tenant": "beta"}, nil, &ml)
	if ml["tenant"] != "acme" {
		t.Fatalf("path prefix should beat header: %v", ml)
	}

	// A client-supplied request ID is honoured.
	resp, _ = doReq(t, http.MethodGet, base+"/healthz", map[string]string{"X-Request-ID": "client-abc"}, nil, nil)
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc" {
		t.Fatalf("X-Request-ID = %q, want client-abc", got)
	}

	// Hostile tenant IDs are rejected at the edge with the JSON envelope,
	// before any state materializes.
	for _, hdr := range []string{"../evil", "a/b", "UPPER", strings.Repeat("x", 65)} {
		var apiErr struct {
			Error string `json:"error"`
		}
		resp, _ := doReq(t, http.MethodGet, base+"/v1/models", map[string]string{"X-Tenant": hdr}, nil, &apiErr)
		if resp.StatusCode != http.StatusBadRequest || apiErr.Error == "" {
			t.Fatalf("X-Tenant %q: %d %+v, want 400 JSON", hdr, resp.StatusCode, apiErr)
		}
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if resp, _ := doReq(t, http.MethodGet, base+"/v1/t/Bad.Tenant/models", nil, nil, &apiErr); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad path tenant: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, base+"/v1/t/acme", nil, nil, &apiErr); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("truncated tenant path: %d", resp.StatusCode)
	}

	// The mux's plain-text 404/405 arrive as the JSON envelope.
	apiErr.Error = ""
	if resp, _ := doReq(t, http.MethodGet, base+"/no/such/route", nil, nil, &apiErr); resp.StatusCode != http.StatusNotFound || apiErr.Error == "" {
		t.Fatalf("404 envelope: %d %+v", resp.StatusCode, apiErr)
	}
	apiErr.Error = ""
	if resp, _ := doReq(t, http.MethodPost, base+"/healthz", nil, strings.NewReader("{}"), &apiErr); resp.StatusCode != http.StatusMethodNotAllowed || apiErr.Error == "" {
		t.Fatalf("405 envelope: %d %+v", resp.StatusCode, apiErr)
	}

	// The per-tenant serving-plane metrics are in the inventory.
	_, metrics := doReq(t, http.MethodGet, base+"/metrics", nil, nil, nil)
	for _, name := range []string{
		"server.tenant.active", "server.tenant.evictions",
		"server.admission.rejected", "server.jobs.queue.depth",
	} {
		if !bytes.Contains(metrics, []byte(name)) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// TestServeTenantIsolation is the acceptance test for the serving plane's
// core promise: tenants learn only from their own traffic. Two tenants
// ingest different telemetry and promote independently; the model tenant A
// promotes inside the multi-tenant server is byte-identical to the model a
// single-tenant server promotes from the same traffic; and the default
// tenant never sees either.
func TestServeTenantIsolation(t *testing.T) {
	tenantsDir := t.TempDir()
	multi := newTestServer(t, func(c *Config) {
		c.TenantsDir = tenantsDir
		c.Learn = testLearnOptions()
	})
	multiAddr, err := multi.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Shutdown(context.Background())
	multiBase := "http://" + multiAddr

	singleDir := t.TempDir()
	single := newTestServer(t, func(c *Config) {
		c.ModelDir = singleDir
		c.Learn = testLearnOptions()
	})
	singleAddr, err := single.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer single.Shutdown(context.Background())
	singleBase := "http://" + singleAddr

	// Tenant acme and the single-tenant server get identical traffic;
	// tenant beta gets traffic with the cost relationship inverted.
	trafficA := learnTelemetryJSONL(t, 4, 0, false)
	trafficB := learnTelemetryJSONL(t, 4, 0, true)

	ingest := func(base, tenantID, payload string) {
		t.Helper()
		var out map[string]any
		hdr := map[string]string{}
		if tenantID != "" {
			hdr["X-Tenant"] = tenantID
		}
		if resp, _ := doReq(t, http.MethodPost, base+"/v1/telemetry", hdr, strings.NewReader(payload), &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s/%s: %d %v", base, tenantID, resp.StatusCode, out)
		}
	}
	trigger := func(base, tenantID string) {
		t.Helper()
		hdr := map[string]string{}
		if tenantID != "" {
			hdr["X-Tenant"] = tenantID
		}
		if resp, _ := doReq(t, http.MethodPost, base+"/v1/learn/trigger", hdr, nil, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("trigger %s/%s: %d", base, tenantID, resp.StatusCode)
		}
	}

	ingest(multiBase, "acme", trafficA)
	ingest(multiBase, "beta", trafficB)
	ingest(singleBase, "", trafficA)

	trigger(multiBase, "acme")
	trigger(multiBase, "beta")
	trigger(singleBase, "")

	stA := pollTenantLearnIdle(t, multiBase, "acme", 1)
	stB := pollTenantLearnIdle(t, multiBase, "beta", 1)
	stS := pollLearnIdle(t, singleBase, 1)
	if stA.Promotions != 1 || stA.ActiveModel != 1 {
		t.Fatalf("acme status = %+v, want one promotion of v1", stA)
	}
	if stB.Promotions != 1 || stB.ActiveModel != 1 {
		t.Fatalf("beta status = %+v, want one promotion of v1", stB)
	}
	if stS.Promotions != 1 || stS.ActiveModel != 1 {
		t.Fatalf("single-tenant status = %+v, want one promotion of v1", stS)
	}
	// Each tenant saw only its own records.
	if stA.RecordsSeen != 20 || stB.RecordsSeen != 20 {
		t.Fatalf("records seen acme=%d beta=%d, want 20 each", stA.RecordsSeen, stB.RecordsSeen)
	}

	// The default tenant in the multi-tenant server never saw traffic and
	// never promoted: single-tenant clients observe the pre-tenant server.
	var health map[string]any
	doReq(t, http.MethodGet, multiBase+"/healthz", nil, nil, &health)
	if health["model"] != nil || health["telemetry"] != float64(0) {
		t.Fatalf("default tenant contaminated: %v", health)
	}

	// Byte-level isolation proof: acme's promoted model is identical to
	// the single-tenant promotion from the same traffic, and differs from
	// beta's (different traffic → different model).
	acmeBlob, err := os.ReadFile(filepath.Join(tenantsDir, "acme", "models", "v0001.clf"))
	if err != nil {
		t.Fatal(err)
	}
	betaBlob, err := os.ReadFile(filepath.Join(tenantsDir, "beta", "models", "v0001.clf"))
	if err != nil {
		t.Fatal(err)
	}
	singleBlob, err := os.ReadFile(filepath.Join(singleDir, "v0001.clf"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(acmeBlob, singleBlob) {
		t.Fatal("acme's promoted model differs from the single-tenant promotion on identical traffic")
	}
	if bytes.Equal(acmeBlob, betaBlob) {
		t.Fatal("acme and beta promoted identical models from different traffic")
	}

	// And the serving behaviour matches: the classify response for tenant
	// acme is byte-identical to the single-tenant server's.
	classifyBody := `{"query":"q6","indexes_b":[{"table":"lineitem","key":["l_shipdate"]}]}`
	respA, bodyA := doReq(t, http.MethodPost, multiBase+"/v1/t/acme/classify", nil, strings.NewReader(classifyBody), nil)
	respS, bodyS := doReq(t, http.MethodPost, singleBase+"/v1/classify", nil, strings.NewReader(classifyBody), nil)
	if respA.StatusCode != http.StatusOK || respS.StatusCode != http.StatusOK {
		t.Fatalf("classify: acme %d, single %d", respA.StatusCode, respS.StatusCode)
	}
	if !bytes.Equal(bodyA, bodyS) {
		t.Fatalf("classify diverged:\nacme:   %s\nsingle: %s", bodyA, bodyS)
	}
}

// TestServeTenantAdmission pins per-tenant rate limiting: a saturated
// tenant gets 429 + Retry-After while its neighbour and the ops endpoints
// stay unaffected.
func TestServeTenantAdmission(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.TenantRate = 0.5 // slow refill so the test never races a token
		c.TenantBurst = 2
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + addr
	acme := map[string]string{"X-Tenant": "acme"}
	beta := map[string]string{"X-Tenant": "beta"}

	// Burst of 2 passes, the third is rejected with Retry-After.
	for i := 0; i < 2; i++ {
		if resp, _ := doReq(t, http.MethodGet, base+"/v1/models", acme, nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("acme burst request %d: %d", i, resp.StatusCode)
		}
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	resp, _ := doReq(t, http.MethodGet, base+"/v1/models", acme, nil, &apiErr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || apiErr.Error == "" {
		t.Fatalf("429 missing Retry-After or JSON envelope: %v / %+v", resp.Header, apiErr)
	}

	// The neighbour tenant has its own bucket.
	for i := 0; i < 2; i++ {
		if resp, _ := doReq(t, http.MethodGet, base+"/v1/models", beta, nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("beta request %d rejected: %d", i, resp.StatusCode)
		}
	}

	// Ops endpoints stay reachable for the saturated tenant.
	if resp, _ := doReq(t, http.MethodGet, base+"/healthz", acme, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz gated by admission: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, base+"/metrics", acme, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics gated by admission: %d", resp.StatusCode)
	}
}

// TestServeTenantFairness pins the tuning plane's fair-share contract:
// tenant A floods its queue (and gets per-tenant 429s), tenant B's job
// still completes within the WRR bound, unaffected by A's backlog.
func TestServeTenantFairness(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueSize = 3 })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + addr

	// Block the only worker so queue contents are deterministic.
	blockerRunning := make(chan struct{})
	release := make(chan struct{})
	blocker, err := s.jobs.submit("blocker", func(ctx context.Context) (any, error) {
		close(blockerRunning)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-blockerRunning

	// Tenant acme floods its queue to capacity with order-recording jobs.
	order := make(chan string, 8)
	record := func(id string) func(ctx context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			order <- id
			return nil, nil
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.jobs.submit("acme", record("acme")); err != nil {
			t.Fatalf("acme fill %d: %v", i, err)
		}
	}

	// The flooding tenant's next HTTP submission is a per-tenant 429...
	var apiErr struct {
		Error string `json:"error"`
	}
	resp, _ := doReq(t, http.MethodPost, base+"/v1/t/acme/jobs/tune", nil,
		strings.NewReader(`{"queries":["q6"]}`), &apiErr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flooded tenant submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || !strings.Contains(apiErr.Error, "acme") {
		t.Fatalf("429 missing Retry-After or tenant attribution: %v / %+v", resp.Header, apiErr)
	}

	// ...while tenant beta's queue is empty and accepts immediately.
	if _, err := s.jobs.submit("beta", record("beta")); err != nil {
		t.Fatalf("beta submit while acme flooded: %v", err)
	}
	var accepted JobStatus
	resp, _ = doReq(t, http.MethodPost, base+"/v1/t/beta/jobs/tune", nil,
		strings.NewReader(`{"queries":["q6"]}`), &accepted)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta HTTP submit: %d, want 202", resp.StatusCode)
	}

	// Unblock the worker and watch the WRR drain: with equal weights, beta's
	// first job completes after at most one acme job — position ≤ 1 in the
	// recorded order — despite acme's three-deep backlog.
	close(release)
	if st := waitState(t, blocker); st != JobDone {
		t.Fatalf("blocker finished %s", st)
	}
	var drained []string
	for i := 0; i < 4; i++ {
		select {
		case id := <-order:
			drained = append(drained, id)
		case <-time.After(30 * time.Second):
			t.Fatalf("drained only %v", drained)
		}
	}
	betaPos := -1
	for i, id := range drained {
		if id == "beta" {
			betaPos = i
		}
	}
	if betaPos < 0 || betaPos > 1 {
		t.Fatalf("beta drained at position %d of %v, want within the WRR bound (<= 1)", betaPos, drained)
	}

	// Beta's HTTP tune job also runs to completion untouched by acme's
	// backlog, and stays invisible to acme (ownership enforced).
	jobURL := base + "/v1/t/beta/jobs/" + accepted.ID
	deadline := time.Now().Add(60 * time.Second)
	var st JobStatus
	for {
		if resp, _ := doReq(t, http.MethodGet, jobURL, nil, nil, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", jobURL, resp.StatusCode)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("beta tune job never terminated: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != JobDone {
		t.Fatalf("beta tune job = %+v", st)
	}
	if resp, _ := doReq(t, http.MethodGet, base+"/v1/t/acme/jobs/"+accepted.ID, nil, nil, &apiErr); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant job read: %d, want 404", resp.StatusCode)
	}
}
