// Package util provides small shared helpers: deterministic random-number
// streams, statistics utilities, and numeric helpers used across the engine,
// the ML substrate, and the experiment harness.
//
// All randomness in the repository flows through named, seeded streams so
// that every experiment is exactly reproducible from a single root seed.
package util

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random-number generator. It wraps math/rand with
// helpers for named sub-stream derivation so that independent components
// (data generation, sampling, model training, measurement noise) draw from
// decorrelated streams derived from one root seed.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this generator was constructed with.
func (g *RNG) Seed() int64 { return g.seed }

// Split derives an independent child stream identified by name. Two children
// of the same parent with different names produce decorrelated sequences;
// the same (seed, name) always yields the same stream.
func (g *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewRNG(g.seed ^ int64(h.Sum64()) ^ 0x5deece66d)
}

// SplitInt derives an independent child stream identified by an integer,
// useful inside loops (for example per-tree or per-repeat streams).
func (g *RNG) SplitInt(i int) *RNG {
	return NewRNG(g.seed ^ (int64(i)+1)*0x7f4a7c159e3779b9)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Int64Range returns a uniform int64 in [lo, hi] inclusive.
func (g *RNG) Int64Range(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Int63n(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// LogNormal returns a multiplicative noise factor exp(sigma * N(0,1)).
func (g *RNG) LogNormal(sigma float64) float64 {
	return math.Exp(sigma * g.r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles a slice of ints in place.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Choice returns a uniformly random element index weighted by w. The weights
// must be non-negative and not all zero; otherwise it falls back to uniform.
func (g *RNG) Choice(w []float64) int {
	var total float64
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return g.Intn(len(w))
	}
	x := g.Float64() * total
	for i, v := range w {
		if v <= 0 {
			continue
		}
		x -= v
		if x <= 0 {
			return i
		}
	}
	return len(w) - 1
}

// SampleWithoutReplacement returns k distinct indices from [0, n). If k >= n
// it returns all n indices in random order.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	p := g.Perm(n)
	if k >= n {
		return p
	}
	return p[:k]
}

// Zipf draws values in [1, n] following a Zipf distribution with exponent s.
// It uses a precomputed CDF for exactness on small domains and rejection
// sampling beyond the cutoff for large domains.
type Zipf struct {
	n   int64
	s   float64
	cdf []float64 // present when n is small enough to tabulate
	rng *RNG
}

// NewZipf creates a Zipf sampler over [1, n] with skew s (s = 0 is uniform).
func NewZipf(rng *RNG, s float64, n int64) *Zipf {
	z := &Zipf{n: n, s: s, rng: rng}
	const tabulated = 1 << 16
	if n <= tabulated {
		cdf := make([]float64, n)
		var sum float64
		for i := int64(1); i <= n; i++ {
			sum += 1.0 / math.Pow(float64(i), s)
			cdf[i-1] = sum
		}
		for i := range cdf {
			cdf[i] /= sum
		}
		z.cdf = cdf
	}
	return z
}

// Next draws the next Zipf-distributed value in [1, n].
func (z *Zipf) Next() int64 {
	if z.cdf != nil {
		u := z.rng.Float64()
		lo, hi := 0, len(z.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo) + 1
	}
	// Inverse-CDF approximation for large n using the continuous Zipf
	// (bounded Pareto) distribution; adequate for data generation.
	u := z.rng.Float64()
	if z.s == 1 {
		return int64(math.Exp(u*math.Log(float64(z.n)))) | 1
	}
	oneMinusS := 1 - z.s
	hi := math.Pow(float64(z.n), oneMinusS)
	v := math.Pow(u*(hi-1)+1, 1/oneMinusS)
	k := int64(v)
	if k < 1 {
		k = 1
	}
	if k > z.n {
		k = z.n
	}
	return k
}
