package util

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Split("data")
	b := root.Split("noise")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Intn(100) == b.Intn(100) {
			same++
		}
	}
	if same > 50 { // expect ~10 collisions on uniform [0,100)
		t.Fatalf("split streams look correlated: %d/1000 equal draws", same)
	}
	// Reproducibility of the split itself.
	c := NewRNG(7).Split("data")
	d := NewRNG(7).Split("data")
	for i := 0; i < 10; i++ {
		if c.Intn(1000) != d.Intn(1000) {
			t.Fatal("same split name not reproducible")
		}
	}
}

func TestRNGInt64Range(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Int64Range(-5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("out of range: %d", v)
		}
	}
	if g.Int64Range(3, 3) != 3 {
		t.Fatal("degenerate range should return lo")
	}
	if g.Int64Range(9, 2) != 9 {
		t.Fatal("inverted range should return lo")
	}
}

func TestRNGChoice(t *testing.T) {
	g := NewRNG(3)
	counts := make([]int, 3)
	w := []float64{0, 1, 3}
	for i := 0; i < 4000; i++ {
		counts[g.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("weighted choice ratio off: %.2f (want ~3)", ratio)
	}
}

func TestRNGSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(5)
	s := g.SampleWithoutReplacement(10, 4)
	if len(s) != 4 {
		t.Fatalf("want 4 samples, got %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 {
			t.Fatalf("sample out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample: %d", v)
		}
		seen[v] = true
	}
	all := g.SampleWithoutReplacement(5, 50)
	if len(all) != 5 {
		t.Fatalf("oversized k should return all n, got %d", len(all))
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(11)
	z := NewZipf(g, 1.2, 1000)
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 1 || v > 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[100] {
		t.Fatalf("zipf not skewed: count(1)=%d count(100)=%d", counts[1], counts[100])
	}
	// Head mass check: the top value should carry a large share under s=1.2.
	if counts[1] < 1000 {
		t.Fatalf("zipf head too light: %d", counts[1])
	}
}

func TestZipfLargeDomain(t *testing.T) {
	g := NewRNG(13)
	z := NewZipf(g, 1.1, 1<<20)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 1 || v > 1<<20 {
			t.Fatalf("large-domain zipf out of range: %d", v)
		}
	}
}

func TestMedianPercentile(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd: %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median even: %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("median empty: %v", m)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("p0: %v", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Fatalf("p100: %v", p)
	}
	if p := Percentile(xs, 50); p != 30 {
		t.Fatalf("p50: %v", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Fatalf("p25: %v", p)
	}
}

func TestPercentileWithinBoundsProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return Percentile(xs, p) == 0
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pp)
		c := append([]float64(nil), xs...)
		sort.Float64s(c)
		return v >= c[0] && v <= c[len(c)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean: %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-9 {
		t.Fatalf("stddev: %v", s)
	}
}

func TestClipHelpers(t *testing.T) {
	if Clip(5, 0, 3) != 3 || Clip(-1, 0, 3) != 0 || Clip(2, 0, 3) != 2 {
		t.Fatal("Clip wrong")
	}
	if ClipInt(5, 0, 3) != 3 || ClipInt(-1, 0, 3) != 0 {
		t.Fatal("ClipInt wrong")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 3, 2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if ArgMax([]float64{5, 5, 5}) != 0 {
		t.Fatal("argmax tie should pick first")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("argmax empty should be -1")
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(0, 0) != 0 {
		t.Fatal("harmonic mean of zeros")
	}
	if h := HarmonicMean(1, 1); h != 1 {
		t.Fatalf("harmonic mean of ones: %v", h)
	}
	if h := HarmonicMean(0.5, 1); math.Abs(h-2.0/3) > 1e-12 {
		t.Fatalf("harmonic mean: %v", h)
	}
}

func TestSafeDiv(t *testing.T) {
	if SafeDiv(1, 0, 100) != 100 {
		t.Fatal("div by zero positive")
	}
	if SafeDiv(-1, 0, 100) != -100 {
		t.Fatal("div by zero negative")
	}
	if SafeDiv(0, 0, 100) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if SafeDiv(10, 2, 100) != 5 {
		t.Fatal("plain division")
	}
	if SafeDiv(1e9, 1, 100) != 100 {
		t.Fatal("clip large ratio")
	}
}

func TestLog10Clipped(t *testing.T) {
	if v := Log10Clipped(1e9, 0.01, 100); v != 2 {
		t.Fatalf("clip high: %v", v)
	}
	if v := Log10Clipped(0, 0.01, 100); v != -2 {
		t.Fatalf("clip low: %v", v)
	}
}

func TestMinMaxInt64(t *testing.T) {
	if MaxInt64(2, 3) != 3 || MinInt64(2, 3) != 2 {
		t.Fatal("min/max wrong")
	}
}

// TestSafeDivEdgeCases pins the contract on the inputs featurization can
// produce: NaN never escapes, 0/0 is 0 (not a clip), the b == 0 limit is
// sign-correct including negative zero, and clipping is symmetric. The NaN
// and negative-zero cases fail on the pre-fix SafeDiv, which clipped the
// raw quotient and keyed the zero-denominator sign off a alone.
func TestSafeDivEdgeCases(t *testing.T) {
	const clip = 1e4
	inf := math.Inf(1)
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0}, // both zero: no signal, not an extreme
		{0, math.Copysign(0, -1), 0},
		{1, 0, clip}, // limits of a/b as b -> 0
		{-1, 0, -clip},
		{1, math.Copysign(0, -1), -clip}, // b -> 0 from below
		{-1, math.Copysign(0, -1), clip},
		{inf, 0, clip},
		{-inf, 0, -clip},
		{inf, 2, clip}, // Inf/finite clips
		{-inf, 2, -clip},
		{3, inf, 0},   // finite/Inf underflows to 0
		{inf, inf, 0}, // NaN quotient maps to 0
		{-inf, inf, 0},
		{math.NaN(), 1, 0}, // NaN inputs map to 0
		{1, math.NaN(), 0},
		{math.NaN(), math.NaN(), 0},
		{2e9, 1, clip}, // overflow clips high
		{-2e9, 1, -clip},
		{10, 2, 5}, // plain division untouched
		{-10, 2, -5},
	}
	for _, c := range cases {
		got := SafeDiv(c.a, c.b, clip)
		if math.IsNaN(got) || got != c.want {
			t.Errorf("SafeDiv(%v, %v, %v) = %v, want %v", c.a, c.b, clip, got, c.want)
		}
	}
}

// TestSafeDivProperties quick-checks the invariants over arbitrary floats:
// the result is always finite, within ±clip, and antisymmetric in a.
func TestSafeDivProperties(t *testing.T) {
	const clip = 1e4
	f := func(a, b float64) bool {
		got := SafeDiv(a, b, clip)
		if math.IsNaN(got) || got < -clip || got > clip {
			return false
		}
		// Antisymmetry: negating a negates the result (0 stays 0). NaN
		// inputs are exempt (-NaN is still NaN -> 0 = -0 works out).
		return SafeDiv(-a, b, clip) == -got || (got == 0 && SafeDiv(-a, b, clip) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
