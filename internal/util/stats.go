package util

import (
	"math"
	"sort"
)

// Median returns the median of xs. It copies the input and returns 0 for an
// empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Clip bounds x to [lo, hi].
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClipInt bounds x to [lo, hi].
func ClipInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ArgMax returns the index of the largest element of xs (first on ties), or
// -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// HarmonicMean returns the harmonic mean of a and b, or 0 when a+b == 0.
// It is the combination rule behind the F1 score.
func HarmonicMean(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// Log10Clipped returns log10(x) with x clipped into [lo, hi] first; useful
// for cost-ratio labels that span orders of magnitude.
func Log10Clipped(x, lo, hi float64) float64 {
	return math.Log10(Clip(x, lo, hi))
}

// SafeDiv divides a by b, clipping the quotient symmetrically into
// [-clip, clip]. Division by zero maps to ±clip with the sign of the a/b
// limit (so a negative-zero denominator flips it), 0/0 maps to 0 — a "no
// change over nothing" feature, not an extreme — and any NaN (NaN inputs,
// or Inf/Inf) maps to 0 so feature vectors never carry NaN into training.
func SafeDiv(a, b, clip float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0
	}
	if b == 0 {
		if a == 0 {
			return 0
		}
		if (a < 0) != math.Signbit(b) {
			return -clip
		}
		return clip
	}
	q := a / b
	if math.IsNaN(q) { // Inf/Inf
		return 0
	}
	return Clip(q, -clip, clip)
}
