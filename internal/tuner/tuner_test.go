package tuner

import (
	"context"
	"testing"

	"repro/internal/candidates"
	"repro/internal/engine/exec"
	"repro/internal/engine/opt"
	"repro/internal/engine/plan"
	"repro/internal/engine/stats"
	"repro/internal/expdata"
	"repro/internal/feat"
	"repro/internal/models"
	"repro/internal/util"
	"repro/internal/workload"
)

type env struct {
	w      *workload.Workload
	whatIf *opt.WhatIf
	ex     *exec.Executor
}

func newEnv(t testing.TB) *env {
	t.Helper()
	w := workload.TPCH("tpch-tuner", 2000, 9)
	ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), 512, 32)
	return &env{
		w:      w,
		whatIf: opt.NewWhatIf(opt.New(w.Schema, ds)),
		ex:     exec.New(w.DB),
	}
}

func TestCandidateGeneration(t *testing.T) {
	e := newEnv(t)
	q := e.w.Query("q6") // selective multi-predicate lineitem scan
	cands := candidates.CandidateIndexes(q, e.w.Schema)
	if len(cands) == 0 {
		t.Fatal("no candidates for a filtered scan query")
	}
	if max := len(q.Tables) * candidates.DefaultLimits().MaxPerTable; len(cands) > max {
		t.Fatalf("candidate budget exceeded: %d > %d", len(cands), max)
	}
	seen := map[string]bool{}
	hasLineitem := false
	for _, ix := range cands {
		if seen[ix.ID()] {
			t.Fatalf("duplicate candidate %s", ix.ID())
		}
		seen[ix.ID()] = true
		if ix.Table == "lineitem" {
			hasLineitem = true
		}
		if !q.HasTable(ix.Table) {
			t.Fatalf("candidate on unreferenced table %s", ix.Table)
		}
	}
	if !hasLineitem {
		t.Fatal("expected candidates on the filtered table")
	}
	// Deterministic.
	again := candidates.CandidateIndexes(q, e.w.Schema)
	for i := range cands {
		if cands[i].ID() != again[i].ID() {
			t.Fatal("candidate generation not deterministic")
		}
	}
}

func TestTuneQueryImprovesEstimatedCost(t *testing.T) {
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{})
	q := e.w.Query("q6")
	rec, err := tn.TuneQuery(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewIndexes) == 0 {
		t.Fatal("expected an index recommendation for a selective scan")
	}
	if rec.EstImprovement <= 0 {
		t.Fatalf("estimated improvement %v", rec.EstImprovement)
	}
	if len(rec.NewIndexes) > tn.Opts.MaxNewIndexes {
		t.Fatal("index limit exceeded")
	}
}

func TestTuneQueryRespectsIndexLimit(t *testing.T) {
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{MaxNewIndexes: 1})
	rec, err := tn.TuneQuery(context.Background(), e.w.Query("q3"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewIndexes) > 1 {
		t.Fatalf("limit 1 violated: %d", len(rec.NewIndexes))
	}
}

func TestTuneQueryRespectsStorageBudget(t *testing.T) {
	e := newEnv(t)
	// A tiny budget admits no index on lineitem.
	tn := New(e.w.Schema, e.whatIf, nil, Options{StorageBudget: 10})
	rec, err := tn.TuneQuery(context.Background(), e.w.Query("q6"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewIndexes) != 0 {
		t.Fatalf("budget violated: %v", rec.NewIndexes)
	}
}

func TestOptTrThresholdBlocksWeakRecommendations(t *testing.T) {
	e := newEnv(t)
	// An absurd 99.9% improvement requirement returns the initial config.
	tn := New(e.w.Schema, e.whatIf, nil, Options{MinEstImprovement: 0.999})
	rec, err := tn.TuneQuery(context.Background(), e.w.Query("q6"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewIndexes) != 0 {
		t.Fatal("OptTr threshold should have blocked the recommendation")
	}
}

func TestComparatorGatesSearch(t *testing.T) {
	e := newEnv(t)
	// A comparator that calls everything a regression must freeze tuning.
	veto := comparatorFunc(func() expdata.Label { return expdata.Regression })
	tn := New(e.w.Schema, e.whatIf, veto, Options{})
	rec, err := tn.TuneQuery(context.Background(), e.w.Query("q6"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewIndexes) != 0 {
		t.Fatal("veto comparator should block all changes")
	}
	// A comparator that calls everything an improvement lets the tuner
	// advance freely.
	accept := comparatorFunc(func() expdata.Label { return expdata.Improvement })
	tn2 := New(e.w.Schema, e.whatIf, accept, Options{})
	rec2, err := tn2.TuneQuery(context.Background(), e.w.Query("q6"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.NewIndexes) == 0 {
		t.Fatal("accepting comparator should allow changes")
	}
}

// comparatorFunc adapts a label constant into a models.Comparator.
type comparatorFunc func() expdata.Label

func (f comparatorFunc) Compare(_, _ *plan.Plan) expdata.Label { return f() }

func TestTuneWorkload(t *testing.T) {
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{MaxNewIndexes: 4})
	qs := e.w.Queries[:6]
	rec, err := tn.TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewIndexes) == 0 {
		t.Fatal("expected workload recommendation")
	}
	if len(rec.NewIndexes) > 4 {
		t.Fatal("workload index limit violated")
	}
	if rec.EstCost <= 0 {
		t.Fatal("estimated cost must be positive")
	}
	if _, err := tn.TuneWorkload(context.Background(), nil, nil); err == nil {
		t.Fatal("empty workload should fail")
	}
}

func TestContinuousQueryTuning(t *testing.T) {
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{})
	cont := NewContinuous(tn, e.ex, ContinuousOpts{Iterations: 4, StopOnRegression: true, Seed: 13})
	notified := 0
	cont.OnData = func(d *expdata.Dataset) {
		notified++
		if d.DB != e.w.Name {
			t.Fatal("dataset db label wrong")
		}
	}
	trace, err := cont.TuneQueryContinuously(context.Background(), e.w.Query("q6"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if trace.InitialCost <= 0 || trace.FinalCost <= 0 {
		t.Fatal("costs must be measured")
	}
	if notified == 0 {
		t.Fatal("OnData never invoked")
	}
	if len(cont.Collected.Plans) == 0 {
		t.Fatal("no execution data collected")
	}
	// Reverts leave FinalCost no worse than (1+lambda) x initial at every
	// accepted step; the final configuration's cost equals the last
	// accepted measurement.
	for _, it := range trace.Iterations {
		if !it.Reverted && it.CostAfter > (1+cont.Opts.Lambda)*it.CostBefore {
			t.Fatal("accepted a measured regression")
		}
	}
}

func TestContinuousWithClassifier(t *testing.T) {
	e := newEnv(t)
	// Collect offline data from this DB (split-by-plan setting) and train.
	ds, err := expdata.Collect(e.w, expdata.CollectOpts{Seed: 3, MaxConfigsPerQuery: 6, ExecRepeats: 2, StatsSampleSize: 256, StatsBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	pairs := ds.Pairs(30, util.NewRNG(5))
	clf := models.NewClassifier(feat.Default(), models.RF(40, 7), expdata.DefaultAlpha)
	if err := clf.Train(pairs); err != nil {
		t.Fatal(err)
	}
	tn := New(e.w.Schema, e.whatIf, clf, Options{})
	cont := NewContinuous(tn, e.ex, ContinuousOpts{Iterations: 3, Seed: 15})
	trace, err := cont.TuneQueryContinuously(context.Background(), e.w.Query("q1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if trace.FinalCost > (1+cont.Opts.Lambda)*trace.InitialCost {
		t.Fatalf("model-gated tuning ended regressed: %v -> %v", trace.InitialCost, trace.FinalCost)
	}
}

func TestContinuousWorkloadTuning(t *testing.T) {
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{MaxNewIndexes: 3})
	cont := NewContinuous(tn, e.ex, ContinuousOpts{Iterations: 3, StopOnRegression: true, Seed: 17})
	qs := e.w.Queries[:5]
	trace, err := cont.TuneWorkloadContinuously(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trace.InitialCost <= 0 {
		t.Fatal("initial workload cost missing")
	}
	if trace.Improvement() < -0.25 {
		t.Fatalf("workload tuning ended badly regressed: %v", trace.Improvement())
	}
}
