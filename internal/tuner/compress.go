package tuner

import (
	"repro/internal/engine/query"
	"repro/internal/obs"
)

var (
	mCompressIn  = obs.C("tuner.compress.queries")
	mCompressOut = obs.C("tuner.compress.representatives")
)

// CompressWorkload dedups a workload by constant-stripped template
// (query.TemplateHash, the same grouping SplitQuery uses for train/test
// splits): all parameterizations of one template collapse into the
// first-seen representative, whose weight becomes the group's total weight
// (queries with weight <= 0 count as 1, matching workloadCost). Order is
// first-seen, so tuning a compressed workload visits templates in the same
// order as the full one and — on duplicate-heavy workloads — produces the
// same recommendation for a fraction of the what-if probes.
//
// The representatives are shallow copies: the input queries are never
// mutated, so callers can reuse them.
func CompressWorkload(qs []*query.Query) []*query.Query {
	byTemplate := make(map[uint64]int, len(qs))
	out := make([]*query.Query, 0, len(qs))
	for _, q := range qs {
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		h := q.TemplateHash()
		if i, ok := byTemplate[h]; ok {
			out[i].Weight += w
			continue
		}
		cp := *q
		cp.Weight = w
		byTemplate[h] = len(out)
		out = append(out, &cp)
	}
	mCompressIn.Add(int64(len(qs)))
	mCompressOut.Add(int64(len(out)))
	return out
}
