package tuner

import (
	"context"
	"testing"

	"repro/internal/engine/plan"
	"repro/internal/expdata"
	"repro/internal/feat"
	"repro/internal/models"
	"repro/internal/util"
)

// serialOnly hides a comparator's CompareBatch so the tuner takes the
// serial gate path.
type serialOnly struct{ c models.Comparator }

func (s serialOnly) Compare(p1, p2 *plan.Plan) expdata.Label { return s.c.Compare(p1, p2) }

// TestBatchedGateMatchesSerial runs the same tune with the classifier's
// batched gate and with batching hidden; recommendations must be
// identical, since CompareBatch is defined to equal per-pair Compare.
func TestBatchedGateMatchesSerial(t *testing.T) {
	e := newEnv(t)
	ds, err := expdata.Collect(e.w, expdata.CollectOpts{Seed: 3, MaxConfigsPerQuery: 4, ExecRepeats: 1, StatsSampleSize: 256, StatsBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	clf := models.NewClassifier(feat.Default(), models.RF(25, 7), expdata.DefaultAlpha)
	if err := clf.Train(ds.Pairs(20, util.NewRNG(5))); err != nil {
		t.Fatal(err)
	}

	qs := e.w.Queries[:4]
	batched := New(e.w.Schema, e.whatIf, clf, Options{MaxNewIndexes: 3})
	recB, err := batched.TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial := New(e.w.Schema, e.whatIf, serialOnly{c: clf}, Options{MaxNewIndexes: 3})
	recS, err := serial.TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recB.Config.Fingerprint() != recS.Config.Fingerprint() {
		t.Fatalf("batched gate changed the recommendation:\n%v\nvs\n%v", recB.Config, recS.Config)
	}
	if recB.EstCost != recS.EstCost {
		t.Fatalf("batched gate changed the estimated cost: %v vs %v", recB.EstCost, recS.EstCost)
	}
}
