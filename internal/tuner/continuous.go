package tuner

import (
	"context"
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/query"
	"repro/internal/expdata"
	"repro/internal/obs"
	"repro/internal/util"
)

// Continuous-tuning metric handles (see DESIGN.md §7). The
// measured-vs-estimated histogram records the ratio of measured cost to the
// optimizer's estimate for each implemented recommendation — the drift the
// paper's classifier exists to absorb.
var (
	mContRevert  = obs.C("tuner.cont.revert")
	mContAccept  = obs.C("tuner.cont.accept")
	mContMeasEst = obs.H("tuner.cont.measured_vs_estimated")
)

// ContinuousOpts configure the continuous-tuning driver (§2.1 problem 2,
// evaluated in §7.9).
type ContinuousOpts struct {
	// Iterations is the number of tuning rounds (paper: 10).
	Iterations int
	// Lambda is the measured-regression threshold for reverting (0.2).
	Lambda float64
	// ExecRepeats is the number of executions whose median measures a
	// configuration (default 3).
	ExecRepeats int
	// StopOnRegression stops tuning after the first revert, as the
	// feedback-free Opt/OptTr baselines must (they would recommend the
	// same reverted indexes forever).
	StopOnRegression bool
	// Seed drives measurement noise.
	Seed int64
}

func (o ContinuousOpts) withDefaults() ContinuousOpts {
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.2
	}
	if o.ExecRepeats <= 0 {
		o.ExecRepeats = 3
	}
	return o
}

// Continuous drives iterative tuning with real executions: implement the
// recommendation, measure, revert regressions, collect execution data, and
// let adaptive models retrain between iterations.
type Continuous struct {
	Tuner *Tuner
	Exec  *exec.Executor
	Opts  ContinuousOpts
	// Collected accumulates the executed plans observed during tuning
	// (the passively collected data adaptive models retrain on).
	Collected *expdata.Dataset
	// OnData, when set, is invoked after each measurement round with the
	// accumulated dataset; adaptive comparators retrain here.
	OnData func(d *expdata.Dataset)
	// OnIter, when set, is invoked after every tuning iteration with the
	// iteration record and the configuration in effect once the iteration
	// settled (the pre-step configuration when the step was reverted).
	// Tests use it to assert revert exactness mid-run.
	OnIter func(r IterRecord, cfg *catalog.Configuration)
}

// NewContinuous wires a continuous driver.
func NewContinuous(t *Tuner, ex *exec.Executor, opts ContinuousOpts) *Continuous {
	return &Continuous{
		Tuner:     t,
		Exec:      ex,
		Opts:      opts.withDefaults(),
		Collected: expdata.NewDataset(ex.DB.Schema.Name),
	}
}

// measure plans and executes a query under a configuration, records the
// executed plan into the collected dataset, and returns it.
func (c *Continuous) measure(q *query.Query, cfg *catalog.Configuration, rng *util.RNG) (*expdata.ExecutedPlan, error) {
	ep, err := c.measureOne(q, cfg, rng)
	if err != nil {
		return nil, err
	}
	c.Collected.Add(ep)
	return ep, nil
}

// measureOne plans and executes a query under a configuration and returns
// the executed plan WITHOUT recording it. It is safe to call concurrently;
// callers add results to the collected dataset serially so the dataset
// order (which seeds pair sampling and model retraining) stays
// deterministic.
func (c *Continuous) measureOne(q *query.Query, cfg *catalog.Configuration, rng *util.RNG) (*expdata.ExecutedPlan, error) {
	p, err := c.Tuner.WhatIf.Plan(q, cfg)
	if err != nil {
		return nil, err
	}
	first, err := c.Exec.Execute(p, rng.SplitInt(0))
	if err != nil {
		return nil, err
	}
	costs := []float64{first.MeasuredCost}
	for i := 1; i < c.Opts.ExecRepeats; i++ {
		r, err := c.Exec.Execute(p, rng.SplitInt(i))
		if err != nil {
			return nil, err
		}
		costs = append(costs, r.MeasuredCost)
	}
	ep := &expdata.ExecutedPlan{
		DB:       c.Exec.DB.Schema.Name,
		Query:    q,
		Plan:     p,
		Executed: first.Annotated,
		Cost:     util.Median(costs),
		Configs:  []string{cfg.Fingerprint()},
	}
	return ep, nil
}

// IterRecord traces one tuning iteration.
type IterRecord struct {
	Iter       int
	NewIndexes int
	Reverted   bool
	// CostBefore/CostAfter are the measured costs at the incumbent and
	// candidate configurations.
	CostBefore float64
	CostAfter  float64
}

// QueryTrace is the outcome of continuously tuning one query.
type QueryTrace struct {
	Query       *query.Query
	InitialCost float64
	FinalCost   float64
	FinalConfig *catalog.Configuration
	Iterations  []IterRecord
	// RegressedFinal reports a revert at the last attempted iteration
	// (the paper's Regress(final) metric).
	RegressedFinal bool
	// Stopped reports that tuning stopped before the iteration budget.
	Stopped bool
}

// Improved reports whether the final cost improved by at least frac over
// the initial cost (Improve(cumulative) uses frac = 0.2).
func (tr *QueryTrace) Improved(frac float64) bool {
	return tr.FinalCost < (1-frac)*tr.InitialCost
}

// TuneQueryContinuously runs the per-query continuous loop of §7.9. ctx
// cancels the loop between (and inside) iterations; a cancelled run returns
// ctx.Err() rather than a partial trace.
func (c *Continuous) TuneQueryContinuously(ctx context.Context, q *query.Query, c0 *catalog.Configuration) (*QueryTrace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c0 == nil {
		c0 = catalog.NewConfiguration()
	}
	rng := util.NewRNG(c.Opts.Seed).Split("cont:" + q.Name)
	base, err := c.measure(q, c0, rng.Split("init"))
	if err != nil {
		return nil, fmt.Errorf("tuner: measuring initial config for %s: %w", q.Name, err)
	}
	c.notify()
	trace := &QueryTrace{Query: q, InitialCost: base.Cost, FinalCost: base.Cost, FinalConfig: c0}
	cur := c0
	curCost := base.Cost
	for iter := 1; iter <= c.Opts.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := c.Tuner.TuneQuery(ctx, q, cur)
		if err != nil {
			return nil, err
		}
		if len(rec.NewIndexes) == 0 {
			trace.Stopped = true
			break
		}
		ep, err := c.measure(q, rec.Config, rng.SplitInt(iter))
		if err != nil {
			return nil, err
		}
		r := IterRecord{Iter: iter, NewIndexes: len(rec.NewIndexes), CostBefore: curCost, CostAfter: ep.Cost}
		if rec.Plan != nil && rec.Plan.EstTotalCost > 0 {
			mContMeasEst.Observe(ep.Cost / rec.Plan.EstTotalCost)
		}
		if ep.Cost > (1+c.Opts.Lambda)*curCost {
			// Measured regression: revert the indexes. The configuration
			// revert is simply keeping `cur`: Configurations are immutable
			// here (the tuner clones before every Add), so `cur` still equals
			// the pre-step snapshot byte for byte — see
			// TestContinuousRevertRestoresPriorConfig. What does need undoing
			// is physical: measuring rec.Config made the executor build the
			// new indexes, and without a drop they would linger in its index
			// cache after the revert.
			mContRevert.Inc()
			r.Reverted = true
			trace.RegressedFinal = true
			trace.Iterations = append(trace.Iterations, r)
			c.dropReverted(cur, rec.NewIndexes)
			c.notify()
			c.notifyIter(r, cur)
			if c.Opts.StopOnRegression {
				trace.Stopped = true
				break
			}
			continue
		}
		mContAccept.Inc()
		trace.RegressedFinal = false
		cur, curCost = rec.Config, ep.Cost
		trace.Iterations = append(trace.Iterations, r)
		c.notify()
		c.notifyIter(r, cur)
	}
	trace.FinalCost = curCost
	trace.FinalConfig = cur
	return trace, nil
}

// WorkloadTrace is the outcome of continuously tuning a query workload.
type WorkloadTrace struct {
	InitialCost float64
	FinalCost   float64
	FinalConfig *catalog.Configuration
	Iterations  []IterRecord
	Stopped     bool
}

// Improvement returns the fractional workload cost reduction.
func (tr *WorkloadTrace) Improvement() float64 {
	if tr.InitialCost <= 0 {
		return 0
	}
	return 1 - tr.FinalCost/tr.InitialCost
}

// measureWorkload measures every query under cfg and returns per-query
// costs and the weighted total. Measurements fan out over the tuner's
// worker pool; each query draws noise from its own named RNG stream and
// the executed plans are recorded in query order, so costs and collected
// data are identical at any Parallelism.
func (c *Continuous) measureWorkload(qs []*query.Query, cfg *catalog.Configuration, rng *util.RNG) ([]float64, float64, error) {
	eps := make([]*expdata.ExecutedPlan, len(qs))
	errs := make([]error, len(qs))
	c.Tuner.parallelFor(len(qs), func(i int) {
		eps[i], errs[i] = c.measureOne(qs[i], cfg, rng.Split("q:"+qs[i].Name))
	})
	costs := make([]float64, len(qs))
	var total float64
	for i, q := range qs {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		c.Collected.Add(eps[i])
		costs[i] = eps[i].Cost
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		total += w * eps[i].Cost
	}
	return costs, total, nil
}

// TuneWorkloadContinuously runs the workload-level continuous loop of §7.9:
// each iteration recommends up to MaxNewIndexes, implements them, and
// reverts to the previous configuration when any query regresses. ctx
// cancels the loop between (and inside) iterations.
func (c *Continuous) TuneWorkloadContinuously(ctx context.Context, qs []*query.Query, c0 *catalog.Configuration) (*WorkloadTrace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c0 == nil {
		c0 = catalog.NewConfiguration()
	}
	rng := util.NewRNG(c.Opts.Seed).Split("contw")
	curCosts, curTotal, err := c.measureWorkload(qs, c0, rng.Split("init"))
	if err != nil {
		return nil, err
	}
	c.notify()
	trace := &WorkloadTrace{InitialCost: curTotal, FinalCost: curTotal, FinalConfig: c0}
	cur := c0
	for iter := 1; iter <= c.Opts.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := c.Tuner.TuneWorkload(ctx, qs, cur)
		if err != nil {
			return nil, err
		}
		if len(rec.NewIndexes) == 0 {
			trace.Stopped = true
			break
		}
		newCosts, newTotal, err := c.measureWorkload(qs, rec.Config, rng.SplitInt(iter))
		if err != nil {
			return nil, err
		}
		r := IterRecord{Iter: iter, NewIndexes: len(rec.NewIndexes), CostBefore: curTotal, CostAfter: newTotal}
		if rec.EstCost > 0 {
			mContMeasEst.Observe(newTotal / rec.EstCost)
		}
		regressed := false
		for i := range qs {
			if newCosts[i] > (1+c.Opts.Lambda)*curCosts[i] {
				regressed = true
				break
			}
		}
		if regressed {
			mContRevert.Inc()
			r.Reverted = true
			trace.Iterations = append(trace.Iterations, r)
			c.dropReverted(cur, rec.NewIndexes)
			c.notify()
			c.notifyIter(r, cur)
			if c.Opts.StopOnRegression {
				trace.Stopped = true
				break
			}
			continue
		}
		mContAccept.Inc()
		cur, curCosts, curTotal = rec.Config, newCosts, newTotal
		trace.Iterations = append(trace.Iterations, r)
		c.notify()
		c.notifyIter(r, cur)
	}
	trace.FinalCost = curTotal
	trace.FinalConfig = cur
	return trace, nil
}

func (c *Continuous) notify() {
	if c.OnData != nil {
		c.OnData(c.Collected)
	}
}

func (c *Continuous) notifyIter(r IterRecord, cfg *catalog.Configuration) {
	if c.OnIter != nil {
		c.OnIter(r, cfg)
	}
}

// dropReverted evicts the physical indexes a reverted step had built, except
// any that the retained configuration still uses (the step's "new" indexes
// are new relative to cur, so overlap cannot happen today; the guard keeps
// the invariant local). Dropping is hygiene, not correctness: a later step
// re-requesting the index rebuilds it deterministically via BulkLoad, so
// measured costs are unchanged either way — but without the drop a
// long-running continuous tuner pins the storage of every configuration it
// ever tried and rejected.
func (c *Continuous) dropReverted(cur *catalog.Configuration, newIndexes []*catalog.Index) {
	for _, ix := range newIndexes {
		if !cur.Has(ix) {
			c.Exec.DropIndex(ix)
		}
	}
}
