package tuner

import (
	"context"
	"errors"
	"testing"
)

// TestTuneQueryHonoursCancellation covers the context plumbing: a
// pre-cancelled context must abort the search before any probing, and a
// context cancelled mid-search must surface context.Canceled rather than a
// partial recommendation.
func TestTuneQueryHonoursCancellation(t *testing.T) {
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tn.TuneQuery(ctx, e.w.Query("q6"), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled TuneQuery err = %v", err)
	}
	if _, err := tn.TuneWorkload(ctx, e.w.Queries, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled TuneWorkload err = %v", err)
	}

	// A nil context still works (legacy call sites default to Background).
	var nilCtx context.Context
	if _, err := tn.TuneQuery(nilCtx, e.w.Query("q6"), nil); err != nil {
		t.Fatalf("nil-context TuneQuery: %v", err)
	}
}

// TestTuneWorkloadDeterministicUnderContext guards against the cancellation
// checks perturbing the search: with a live context the result must match
// the no-cancellation baseline exactly.
func TestTuneWorkloadDeterministicUnderContext(t *testing.T) {
	e := newEnv(t)
	qs := e.w.Queries[:4]
	base, err := New(e.w.Schema, e.whatIf, nil, Options{Parallelism: 1}).TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := New(e.w.Schema, e.whatIf, nil, Options{Parallelism: 4}).TuneWorkload(ctx, qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NewIndexes) != len(base.NewIndexes) || got.EstCost != base.EstCost {
		t.Fatalf("context/parallelism changed the result: %v vs %v", got.NewIndexes, base.NewIndexes)
	}
	for i := range got.NewIndexes {
		if got.NewIndexes[i].ID() != base.NewIndexes[i].ID() {
			t.Fatalf("index %d differs: %s vs %s", i, got.NewIndexes[i].ID(), base.NewIndexes[i].ID())
		}
	}
}
