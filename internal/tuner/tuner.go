// Package tuner implements a Chaudhuri–Narasayya-style index tuner: a
// query-level search over hypothetical configurations through the
// optimizer's what-if API, a workload-level greedy enumeration under
// constraints (index count, storage budget), and a continuous-tuning driver
// that implements configurations, measures real executions, reverts
// regressions, and feeds new execution data back to adaptive models.
//
// The tuner stays "in-sync" with the optimizer by only ever considering the
// plan the optimizer picks for a configuration (§5). A plan-pair Comparator
// — the paper's classifier — can gate the search: configurations predicted
// to regress are rejected, and improvements are accepted by prediction
// rather than by estimated cost alone.
package tuner

import (
	"fmt"
	"math"

	"repro/internal/candidates"
	"repro/internal/engine/catalog"
	"repro/internal/engine/opt"
	"repro/internal/engine/plan"
	"repro/internal/engine/query"
	"repro/internal/expdata"
	"repro/internal/models"
)

// Options bound the tuner's search.
type Options struct {
	// MaxNewIndexes bounds the indexes added relative to the initial
	// configuration (the per-iteration limit of continuous tuning;
	// default 5, as §7.9).
	MaxNewIndexes int
	// StorageBudget bounds the estimated bytes of added indexes (0 = off).
	StorageBudget int64
	// Alpha is the significance threshold used with the comparator.
	Alpha float64
	// MinEstImprovement is the OptTr baseline knob: a configuration is
	// only recommended when the estimated improvement exceeds this
	// fraction (0 disables the threshold).
	MinEstImprovement float64
	// RequireImprovement makes the model-gated tuner advance only on
	// predicted improvements (with optimizer-estimate tie-breaks on
	// unsure), per §5.
	RequireImprovement bool
}

func (o Options) withDefaults() Options {
	if o.MaxNewIndexes <= 0 {
		o.MaxNewIndexes = 5
	}
	if o.Alpha <= 0 {
		o.Alpha = expdata.DefaultAlpha
	}
	return o
}

// Tuner searches index configurations for queries and workloads.
type Tuner struct {
	Schema *catalog.Schema
	WhatIf *opt.WhatIf
	// Cmp is the plan-pair comparator gating the search; nil reproduces
	// the classic estimate-only tuner.
	Cmp  models.Comparator
	Opts Options
}

// New creates a tuner over a schema and what-if facade. cmp may be nil.
func New(schema *catalog.Schema, whatIf *opt.WhatIf, cmp models.Comparator, opts Options) *Tuner {
	return &Tuner{Schema: schema, WhatIf: whatIf, Cmp: cmp, Opts: opts.withDefaults()}
}

// Recommendation is the outcome of a query-level search.
type Recommendation struct {
	Config *catalog.Configuration
	Plan   *plan.Plan
	// NewIndexes are the indexes added relative to the initial config.
	NewIndexes []*catalog.Index
	// EstImprovement is the optimizer-estimated fractional cost reduction.
	EstImprovement float64
}

// allowedByBudget checks the storage budget on the added indexes.
func (t *Tuner) allowedByBudget(c0, c *catalog.Configuration) bool {
	if t.Opts.StorageBudget <= 0 {
		return true
	}
	var added int64
	for _, ix := range c.Diff(c0) {
		added += ix.EstimatedBytes(t.Schema.Table(ix.Table))
	}
	return added <= t.Opts.StorageBudget
}

// acceptNoRegression applies the no-regression gate for one query: the
// comparator must not predict a regression versus the initial plan.
func (t *Tuner) acceptNoRegression(p0, pH *plan.Plan) bool {
	if t.Cmp == nil {
		return true // the classic tuner trusts estimates
	}
	return !models.IsRegression(t.Cmp, p0, pH)
}

// better decides whether candidate pH improves on the incumbent pBest,
// using the comparator when present (optimizer estimates break unsure
// ties, §5), otherwise estimated cost.
func (t *Tuner) better(pBest, pH *plan.Plan) bool {
	if t.Cmp != nil {
		switch t.Cmp.Compare(pBest, pH) {
		case expdata.Improvement:
			return true
		case expdata.Regression:
			return false
		default:
			if t.Opts.RequireImprovement {
				return false
			}
			return pH.EstTotalCost < pBest.EstTotalCost
		}
	}
	return pH.EstTotalCost < pBest.EstTotalCost
}

// TuneQuery searches the best configuration for one query starting from
// c0: greedy addition of candidate indexes, gated by the no-regression
// constraint and the improvement rule.
func (t *Tuner) TuneQuery(q *query.Query, c0 *catalog.Configuration) (*Recommendation, error) {
	if c0 == nil {
		c0 = catalog.NewConfiguration()
	}
	p0, err := t.WhatIf.Plan(q, c0)
	if err != nil {
		return nil, fmt.Errorf("tuner: initial plan for %s: %w", q.Name, err)
	}
	cands := candidates.CandidateIndexes(q, t.Schema)
	bestCfg, bestPlan := c0, p0
	used := map[string]bool{}

	for len(bestCfg.Diff(c0)) < t.Opts.MaxNewIndexes {
		var stepCfg *catalog.Configuration
		var stepPlan *plan.Plan
		var stepIx *catalog.Index
		for _, ix := range cands {
			if used[ix.ID()] || bestCfg.Has(ix) {
				continue
			}
			cfg := bestCfg.Clone().Add(ix)
			if !t.allowedByBudget(c0, cfg) {
				continue
			}
			pH, err := t.WhatIf.Plan(q, cfg)
			if err != nil {
				return nil, err
			}
			if !t.acceptNoRegression(p0, pH) {
				continue
			}
			// The incumbent for the greedy step is the best plan so far;
			// candidates must also beat the current step leader.
			ref := bestPlan
			if stepPlan != nil {
				ref = stepPlan
			}
			if t.better(ref, pH) {
				stepCfg, stepPlan, stepIx = cfg, pH, ix
			}
		}
		if stepCfg == nil {
			break
		}
		bestCfg, bestPlan = stepCfg, stepPlan
		used[stepIx.ID()] = true
	}

	rec := &Recommendation{
		Config:     bestCfg,
		Plan:       bestPlan,
		NewIndexes: bestCfg.Diff(c0),
	}
	if p0.EstTotalCost > 0 {
		rec.EstImprovement = 1 - bestPlan.EstTotalCost/p0.EstTotalCost
	}
	// The OptTr baseline refuses recommendations below the estimated
	// improvement threshold.
	if t.Opts.MinEstImprovement > 0 && rec.EstImprovement < t.Opts.MinEstImprovement {
		return &Recommendation{Config: c0, Plan: p0}, nil
	}
	return rec, nil
}

// WorkloadRecommendation is the outcome of a workload-level search.
type WorkloadRecommendation struct {
	Config *catalog.Configuration
	// NewIndexes are added relative to the initial configuration.
	NewIndexes []*catalog.Index
	// EstCost is the weighted optimizer-estimated workload cost under
	// Config.
	EstCost float64
}

// workloadCost computes the weighted estimated cost of a workload under a
// configuration, also checking the per-query no-regression gate against
// the initial plans. ok is false when some query is predicted to regress.
func (t *Tuner) workloadCost(qs []*query.Query, initPlans []*plan.Plan, cfg *catalog.Configuration) (float64, bool, error) {
	var total float64
	for i, q := range qs {
		pH, err := t.WhatIf.Plan(q, cfg)
		if err != nil {
			return 0, false, err
		}
		if !t.acceptNoRegression(initPlans[i], pH) {
			return 0, false, nil
		}
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		total += w * pH.EstTotalCost
	}
	return total, true, nil
}

// TuneWorkload runs the two-phase search of §5: query-level search derives
// the candidate index pool; a greedy enumeration assembles the workload
// configuration under the constraints.
func (t *Tuner) TuneWorkload(qs []*query.Query, c0 *catalog.Configuration) (*WorkloadRecommendation, error) {
	if c0 == nil {
		c0 = catalog.NewConfiguration()
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("tuner: empty workload")
	}
	initPlans := make([]*plan.Plan, len(qs))
	for i, q := range qs {
		p, err := t.WhatIf.Plan(q, c0)
		if err != nil {
			return nil, err
		}
		initPlans[i] = p
	}
	// Phase (a): per-query bests form the candidate pool.
	poolSet := map[string]*catalog.Index{}
	var pool []*catalog.Index
	for _, q := range qs {
		rec, err := t.TuneQuery(q, c0)
		if err != nil {
			return nil, err
		}
		for _, ix := range rec.NewIndexes {
			if _, ok := poolSet[ix.ID()]; !ok {
				poolSet[ix.ID()] = ix
				pool = append(pool, ix)
			}
		}
	}
	// Phase (b): greedy assembly.
	cur := c0
	curCost, ok, err := t.workloadCost(qs, initPlans, c0)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("tuner: initial configuration rejected by its own gate")
	}
	for len(cur.Diff(c0)) < t.Opts.MaxNewIndexes {
		var stepCfg *catalog.Configuration
		stepCost := curCost
		for _, ix := range pool {
			if cur.Has(ix) {
				continue
			}
			cfg := cur.Clone().Add(ix)
			if !t.allowedByBudget(c0, cfg) {
				continue
			}
			cost, ok, err := t.workloadCost(qs, initPlans, cfg)
			if err != nil {
				return nil, err
			}
			if ok && cost < stepCost {
				stepCfg, stepCost = cfg, cost
			}
		}
		if stepCfg == nil {
			break
		}
		cur, curCost = stepCfg, stepCost
	}
	if t.Opts.MinEstImprovement > 0 {
		base := math.Max(1e-9, mustCost(t, qs, initPlans, c0))
		if 1-curCost/base < t.Opts.MinEstImprovement {
			cur, curCost = c0, base
		}
	}
	return &WorkloadRecommendation{Config: cur, NewIndexes: cur.Diff(c0), EstCost: curCost}, nil
}

func mustCost(t *Tuner, qs []*query.Query, initPlans []*plan.Plan, cfg *catalog.Configuration) float64 {
	c, _, err := t.workloadCost(qs, initPlans, cfg)
	if err != nil {
		return 0
	}
	return c
}
