// Package tuner implements a Chaudhuri–Narasayya-style index tuner: a
// query-level search over hypothetical configurations through the
// optimizer's what-if API, a workload-level greedy enumeration under
// constraints (index count, storage budget), and a continuous-tuning driver
// that implements configurations, measures real executions, reverts
// regressions, and feeds new execution data back to adaptive models.
//
// The tuner stays "in-sync" with the optimizer by only ever considering the
// plan the optimizer picks for a configuration (§5). A plan-pair Comparator
// — the paper's classifier — can gate the search: configurations predicted
// to regress are rejected, and improvements are accepted by prediction
// rather than by estimated cost alone.
//
// What-if probes dominate tuning time, so the search fans them out across a
// bounded worker pool (Options.Parallelism). Results are deterministic:
// probes are collected per step and the winner is selected by a fixed rule
// over candidate order, never by goroutine completion order, so any
// Parallelism produces byte-identical recommendations.
package tuner

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/candidates"
	"repro/internal/engine/catalog"
	"repro/internal/engine/opt"
	"repro/internal/engine/plan"
	"repro/internal/engine/query"
	"repro/internal/expdata"
	"repro/internal/models"
	"repro/internal/obs"
)

// Pre-resolved metric handles (see DESIGN.md §7). Gate counters tally the
// comparator's verdicts at the no-regression gate; pool metrics expose how
// often fan-outs actually got extra workers versus degrading to the caller.
var (
	mGateRegression = obs.C("tuner.gate.regression")
	mGateImprove    = obs.C("tuner.gate.improvement")
	mGateUnsure     = obs.C("tuner.gate.unsure")
	mStepCands      = obs.H("tuner.step.candidates")
	mWStepCands     = obs.H("tuner.workload.step.candidates")
	mWinnerMargin   = obs.H("tuner.winner.margin")
	mPoolSpawned    = obs.C("tuner.pool.spawned")
	mPoolInline     = obs.C("tuner.pool.inline")
	mPoolBusy       = obs.G("tuner.pool.busy")
	mPoolBusyMax    = obs.G("tuner.pool.busy.max")
)

// Options bound the tuner's search.
type Options struct {
	// MaxNewIndexes bounds the indexes added relative to the initial
	// configuration (the per-iteration limit of continuous tuning;
	// default 5, as §7.9).
	MaxNewIndexes int
	// StorageBudget bounds the estimated bytes of added indexes (0 = off).
	StorageBudget int64
	// MaxIndexesPerTable bounds the indexes added per table (0 = off),
	// keeping a recommendation from piling onto one hot fact table.
	MaxIndexesPerTable int
	// MaxColumnFraction bounds the number of added indexes at
	// max(1, floor(fraction × total schema columns)) (0 = off) — the
	// %-of-columns budget the index-tuning literature benchmarks at
	// 10%/20% of database columns.
	MaxColumnFraction float64
	// CandidateLimits bound candidate generation per query; zero fields
	// take candidates.DefaultLimits.
	CandidateLimits candidates.Limits
	// Compress dedups the workload by constant-stripped template into
	// weighted representatives before TuneWorkload's search (see
	// CompressWorkload), cutting what-if probes on duplicate-heavy
	// workloads without changing the recommendation.
	Compress bool
	// Alpha is the significance threshold used with the comparator.
	Alpha float64
	// MinEstImprovement is the OptTr baseline knob: a configuration is
	// only recommended when the estimated improvement exceeds this
	// fraction (0 disables the threshold).
	MinEstImprovement float64
	// RequireImprovement makes the model-gated tuner advance only on
	// predicted improvements (with optimizer-estimate tie-breaks on
	// unsure), per §5.
	RequireImprovement bool
	// Parallelism bounds the worker pool fanning out what-if probes
	// (0 = runtime.GOMAXPROCS(0); 1 = serial). Recommendations are
	// identical at every setting; only wall-clock time changes.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.MaxNewIndexes <= 0 {
		o.MaxNewIndexes = 5
	}
	if o.Alpha <= 0 {
		o.Alpha = expdata.DefaultAlpha
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return o
}

// Tuner searches index configurations for queries and workloads.
type Tuner struct {
	Schema *catalog.Schema
	WhatIf *opt.WhatIf
	// Cmp is the plan-pair comparator gating the search; nil reproduces
	// the classic estimate-only tuner.
	Cmp  models.Comparator
	Opts Options

	// workers is a counting semaphore bounding the extra goroutines spawned
	// across all (possibly nested) fan-outs; nil means fully serial.
	workers chan struct{}

	// colBudget is the added-index count implied by MaxColumnFraction
	// (0 = off), resolved once against the schema at construction.
	colBudget int
}

// New creates a tuner over a schema and what-if facade. cmp may be nil.
func New(schema *catalog.Schema, whatIf *opt.WhatIf, cmp models.Comparator, opts Options) *Tuner {
	t := &Tuner{Schema: schema, WhatIf: whatIf, Cmp: cmp, Opts: opts.withDefaults()}
	if t.Opts.Parallelism > 1 {
		t.workers = make(chan struct{}, t.Opts.Parallelism-1)
	}
	if f := t.Opts.MaxColumnFraction; f > 0 && schema != nil {
		var cols int
		for _, name := range schema.TableNames() {
			cols += len(schema.Table(name).Columns)
		}
		if t.colBudget = int(f * float64(cols)); t.colBudget < 1 {
			t.colBudget = 1
		}
	}
	return t
}

// parallelFor runs fn(i) for every i in [0, n). With Parallelism P the
// tuner keeps at most P goroutines busy globally: the caller always
// participates, and extra workers are spawned only while pool tokens are
// free, so nested fan-outs (workload search inside query search inside
// continuous tuning) degrade to inline execution instead of deadlocking.
// fn must communicate through per-index slots; parallelFor imposes no
// ordering between iterations.
func (t *Tuner) parallelFor(n int, fn func(i int)) {
	if n <= 1 || t.workers == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	var spawnedAny bool
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case t.workers <- struct{}{}:
		default:
			spawned = n // no token free: the caller picks up the rest
			continue
		}
		spawnedAny = true
		mPoolSpawned.Inc()
		mPoolBusy.Add(1)
		mPoolBusyMax.Max(mPoolBusy.Value())
		wg.Add(1)
		go func() {
			defer func() {
				<-t.workers
				mPoolBusy.Add(-1)
				wg.Done()
			}()
			run()
		}()
	}
	if !spawnedAny {
		// The pool was saturated (nested fan-out): this fan-out degraded to
		// inline execution by the caller.
		mPoolInline.Inc()
	}
	run()
	wg.Wait()
}

// Recommendation is the outcome of a query-level search.
type Recommendation struct {
	Config *catalog.Configuration
	Plan   *plan.Plan
	// NewIndexes are the indexes added relative to the initial config.
	NewIndexes []*catalog.Index
	// EstImprovement is the optimizer-estimated fractional cost reduction.
	EstImprovement float64
}

// allowedByBudget checks every added-index budget — storage bytes,
// per-table index count, and the %-of-columns count — on the diff versus
// the initial configuration. It is the single budget gate shared by the
// query-level and workload-level searches, so all budgets hold at both.
func (t *Tuner) allowedByBudget(c0, c *catalog.Configuration) bool {
	if t.Opts.StorageBudget <= 0 && t.Opts.MaxIndexesPerTable <= 0 && t.colBudget <= 0 {
		return true
	}
	diff := c.Diff(c0)
	if t.colBudget > 0 && len(diff) > t.colBudget {
		return false
	}
	if max := t.Opts.MaxIndexesPerTable; max > 0 {
		perTable := map[string]int{}
		for _, ix := range diff {
			if perTable[ix.Table]++; perTable[ix.Table] > max {
				return false
			}
		}
	}
	if t.Opts.StorageBudget > 0 {
		var added int64
		for _, ix := range diff {
			added += ix.EstimatedBytes(t.Schema.Table(ix.Table))
		}
		if added > t.Opts.StorageBudget {
			return false
		}
	}
	return true
}

// gateVerdict tallies one no-regression verdict and reports acceptance.
// It is the single accounting point for the gate counters, shared by the
// serial and batched gate paths, so batching cannot skew the metrics.
func gateVerdict(v expdata.Label) bool {
	switch v {
	case expdata.Regression:
		mGateRegression.Inc()
		return false
	case expdata.Improvement:
		mGateImprove.Inc()
	default:
		mGateUnsure.Inc()
	}
	return true
}

// acceptNoRegression applies the no-regression gate for one query: the
// comparator must not predict a regression versus the initial plan.
func (t *Tuner) acceptNoRegression(p0, pH *plan.Plan) bool {
	if t.Cmp == nil {
		return true // the classic tuner trusts estimates
	}
	// One Compare call per gate, counted by verdict. Semantically identical
	// to !models.IsRegression(t.Cmp, p0, pH).
	return gateVerdict(t.Cmp.Compare(p0, pH))
}

// gateBatch runs the no-regression comparisons of many candidates against
// a fixed incumbent in one batched call when the comparator supports it.
// It returns nil when the caller should gate serially instead. Verdicts
// are returned untallied: the caller feeds them to gateVerdict in
// candidate order, so counter semantics match the serial path exactly.
func (t *Tuner) gateBatch(p0 *plan.Plan, cands []*plan.Plan) []expdata.Label {
	bc, ok := t.Cmp.(models.BatchComparator)
	if !ok || len(cands) < 2 {
		return nil
	}
	pairs := make([]models.PlanPair, len(cands))
	for i, p := range cands {
		pairs[i] = models.PlanPair{P1: p0, P2: p}
	}
	return bc.CompareBatch(pairs, nil)
}

// better decides whether candidate pH improves on the incumbent pBest,
// using the comparator when present (optimizer estimates break unsure
// ties, §5), otherwise estimated cost.
//
// Invariant: within one greedy step every candidate is gated against the
// same incumbent — the best plan of the previous step — never against the
// running step leader. A comparator is not necessarily transitive (A can
// beat B and B beat C while C beats A), so chaining comparisons through a
// moving leader would make the chosen index depend on candidate iteration
// order. Survivors of the fixed gate are instead ranked by one
// deterministic rule: lowest estimated cost, earliest candidate on ties.
func (t *Tuner) better(pBest, pH *plan.Plan) bool {
	if t.Cmp != nil {
		switch t.Cmp.Compare(pBest, pH) {
		case expdata.Improvement:
			return true
		case expdata.Regression:
			return false
		default:
			if t.Opts.RequireImprovement {
				return false
			}
			return pH.EstTotalCost < pBest.EstTotalCost
		}
	}
	return pH.EstTotalCost < pBest.EstTotalCost
}

// anyErr reports whether any element of errs is non-nil.
func anyErr(errs []error) bool {
	for _, err := range errs {
		if err != nil {
			return true
		}
	}
	return false
}

// probesOK reports whether every probe of a step succeeded (the batched
// gate path requires all plans up front; any error falls back to the
// serial gate, which returns the first error in candidate order).
func probesOK(probes []*queryProbe) bool {
	for _, pr := range probes {
		if pr.err != nil {
			return false
		}
	}
	return true
}

// queryProbe is one candidate probe of a greedy step: the candidate index,
// the hypothetical configuration including it, and the optimizer's answer.
type queryProbe struct {
	ix  *catalog.Index
	cfg *catalog.Configuration
	p   *plan.Plan
	err error
}

// TuneQuery searches the best configuration for one query starting from
// c0: greedy addition of candidate indexes, gated by the no-regression
// constraint and the improvement rule. Each greedy step fans its what-if
// probes out over the worker pool and then selects the winner serially in
// candidate order, so results are identical at any Parallelism.
//
// ctx cancels the search: cancellation is checked before every greedy step
// and inside every probe, so a cancelled tune returns ctx.Err() within one
// what-if probe's latency instead of running the full enumeration.
func (t *Tuner) TuneQuery(ctx context.Context, q *query.Query, c0 *catalog.Configuration) (*Recommendation, error) {
	sp := obs.StartSpan("tuner.query")
	defer sp.End()
	if ctx == nil {
		ctx = context.Background()
	}
	if c0 == nil {
		c0 = catalog.NewConfiguration()
	}
	p0, err := t.WhatIf.Plan(q, c0)
	if err != nil {
		return nil, fmt.Errorf("tuner: initial plan for %s: %w", q.Name, err)
	}
	cands := candidates.Generate(q, t.Schema, t.Opts.CandidateLimits)
	bestCfg, bestPlan := c0, p0
	used := map[string]bool{}

	for len(bestCfg.Diff(c0)) < t.Opts.MaxNewIndexes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Collect this step's eligible candidates in candidate order.
		probes := make([]*queryProbe, 0, len(cands))
		for _, ix := range cands {
			if used[ix.ID()] || bestCfg.Has(ix) {
				continue
			}
			cfg := bestCfg.Clone().Add(ix)
			if !t.allowedByBudget(c0, cfg) {
				continue
			}
			probes = append(probes, &queryProbe{ix: ix, cfg: cfg})
		}
		mStepCands.Observe(float64(len(probes)))
		if t.workers == nil {
			// Serial probing: one batch what-if call amortizes per-probe
			// setup (query fingerprint, per-query analysis, planner state)
			// across all of this step's candidates.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfgs := make([]*catalog.Configuration, len(probes))
			for i, pr := range probes {
				cfgs[i] = pr.cfg
			}
			plans, err := t.WhatIf.PlanBatch(q, cfgs)
			if err != nil {
				return nil, err
			}
			for i, pr := range probes {
				pr.p = plans[i]
			}
		} else {
			t.parallelFor(len(probes), func(i int) {
				pr := probes[i]
				if pr.err = ctx.Err(); pr.err != nil {
					return
				}
				pr.p, pr.err = t.WhatIf.Plan(q, pr.cfg)
			})
		}
		// Serial selection over the probe results, in candidate order:
		// gate every candidate against the step's fixed incumbent
		// (bestPlan), then keep the lowest-cost survivor. When every probe
		// succeeded and the comparator batches, all gate comparisons run as
		// one inference batch; the verdicts are then tallied and consumed
		// in the same candidate order as the serial path.
		var verdicts []expdata.Label
		if probesOK(probes) {
			cand := make([]*plan.Plan, len(probes))
			for i, pr := range probes {
				cand[i] = pr.p
			}
			verdicts = t.gateBatch(p0, cand)
		}
		var step *queryProbe
		for i, pr := range probes {
			if pr.err != nil {
				return nil, pr.err
			}
			var accepted bool
			if verdicts != nil {
				accepted = gateVerdict(verdicts[i])
			} else {
				accepted = t.acceptNoRegression(p0, pr.p)
			}
			if !accepted {
				continue
			}
			if !t.better(bestPlan, pr.p) {
				continue
			}
			if step == nil || pr.p.EstTotalCost < step.p.EstTotalCost {
				step = pr
			}
		}
		if step == nil {
			break
		}
		if bestPlan.EstTotalCost > 0 {
			mWinnerMargin.Observe(1 - step.p.EstTotalCost/bestPlan.EstTotalCost)
		}
		bestCfg, bestPlan = step.cfg, step.p
		used[step.ix.ID()] = true
	}

	rec := &Recommendation{
		Config:     bestCfg,
		Plan:       bestPlan,
		NewIndexes: bestCfg.Diff(c0),
	}
	if p0.EstTotalCost > 0 {
		rec.EstImprovement = 1 - bestPlan.EstTotalCost/p0.EstTotalCost
	}
	// The OptTr baseline refuses recommendations below the estimated
	// improvement threshold.
	if t.Opts.MinEstImprovement > 0 && rec.EstImprovement < t.Opts.MinEstImprovement {
		return &Recommendation{Config: c0, Plan: p0}, nil
	}
	return rec, nil
}

// WorkloadRecommendation is the outcome of a workload-level search.
type WorkloadRecommendation struct {
	Config *catalog.Configuration
	// NewIndexes are added relative to the initial configuration.
	NewIndexes []*catalog.Index
	// EstCost is the weighted optimizer-estimated workload cost under
	// Config.
	EstCost float64
}

// workloadCost computes the weighted estimated cost of a workload under a
// configuration, also checking the per-query no-regression gate against
// the initial plans. ok is false when some query is predicted to regress.
// The per-query plans are probed in parallel; the gate and the weighted
// sum run serially in query order, so the result (including float
// summation order) matches the serial computation exactly.
func (t *Tuner) workloadCost(ctx context.Context, qs []*query.Query, initPlans []*plan.Plan, cfg *catalog.Configuration) (float64, bool, error) {
	plans := make([]*plan.Plan, len(qs))
	errs := make([]error, len(qs))
	t.parallelFor(len(qs), func(i int) {
		if errs[i] = ctx.Err(); errs[i] != nil {
			return
		}
		plans[i], errs[i] = t.WhatIf.Plan(qs[i], cfg)
	})
	// With a batching comparator and no probe errors, run all per-query
	// gate comparisons as one inference batch. Verdicts are tallied in
	// query order below, stopping at the first regression, so the counters
	// match the serial path exactly (later verdicts stay untallied).
	var verdicts []expdata.Label
	if t.Cmp != nil && !anyErr(errs) {
		if bc, ok := t.Cmp.(models.BatchComparator); ok && len(qs) >= 2 {
			pairs := make([]models.PlanPair, len(qs))
			for i := range qs {
				pairs[i] = models.PlanPair{P1: initPlans[i], P2: plans[i]}
			}
			verdicts = bc.CompareBatch(pairs, nil)
		}
	}
	var total float64
	for i, q := range qs {
		if errs[i] != nil {
			return 0, false, errs[i]
		}
		var accepted bool
		if verdicts != nil {
			accepted = gateVerdict(verdicts[i])
		} else {
			accepted = t.acceptNoRegression(initPlans[i], plans[i])
		}
		if !accepted {
			return 0, false, nil
		}
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		total += w * plans[i].EstTotalCost
	}
	return total, true, nil
}

// TuneWorkload runs the two-phase search of §5: query-level search derives
// the candidate index pool; a greedy enumeration assembles the workload
// configuration under the constraints. Phase (a) tunes the queries in
// parallel; phase (b) evaluates the pool candidates of each greedy step in
// parallel. Both phases pick winners by fixed order-based rules, so the
// recommendation is identical at any Parallelism. ctx cancels both phases.
func (t *Tuner) TuneWorkload(ctx context.Context, qs []*query.Query, c0 *catalog.Configuration) (*WorkloadRecommendation, error) {
	sp := obs.StartSpan("tuner.workload")
	defer sp.End()
	if ctx == nil {
		ctx = context.Background()
	}
	if c0 == nil {
		c0 = catalog.NewConfiguration()
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("tuner: empty workload")
	}
	if t.Opts.Compress {
		qs = CompressWorkload(qs)
	}
	initPlans := make([]*plan.Plan, len(qs))
	initErrs := make([]error, len(qs))
	t.parallelFor(len(qs), func(i int) {
		if initErrs[i] = ctx.Err(); initErrs[i] != nil {
			return
		}
		initPlans[i], initErrs[i] = t.WhatIf.Plan(qs[i], c0)
	})
	for _, err := range initErrs {
		if err != nil {
			return nil, err
		}
	}
	// Phase (a): per-query bests form the candidate pool. The pool is
	// assembled serially in query order from the parallel results, keeping
	// its order — and therefore phase (b)'s tie-breaks — deterministic.
	recs := make([]*Recommendation, len(qs))
	recErrs := make([]error, len(qs))
	t.parallelFor(len(qs), func(i int) {
		recs[i], recErrs[i] = t.TuneQuery(ctx, qs[i], c0)
	})
	poolSet := map[string]*catalog.Index{}
	var pool []*catalog.Index
	for i := range qs {
		if recErrs[i] != nil {
			return nil, recErrs[i]
		}
		for _, ix := range recs[i].NewIndexes {
			if _, ok := poolSet[ix.ID()]; !ok {
				poolSet[ix.ID()] = ix
				pool = append(pool, ix)
			}
		}
	}
	// Phase (b): greedy assembly.
	cur := c0
	curCost, ok, err := t.workloadCost(ctx, qs, initPlans, c0)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("tuner: initial configuration rejected by its own gate")
	}
	baseCost := curCost
	for len(cur.Diff(c0)) < t.Opts.MaxNewIndexes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		type poolProbe struct {
			cfg  *catalog.Configuration
			cost float64
			ok   bool
			err  error
		}
		probes := make([]*poolProbe, 0, len(pool))
		for _, ix := range pool {
			if cur.Has(ix) {
				continue
			}
			cfg := cur.Clone().Add(ix)
			if !t.allowedByBudget(c0, cfg) {
				continue
			}
			probes = append(probes, &poolProbe{cfg: cfg})
		}
		mWStepCands.Observe(float64(len(probes)))
		t.parallelFor(len(probes), func(i int) {
			pr := probes[i]
			pr.cost, pr.ok, pr.err = t.workloadCost(ctx, qs, initPlans, pr.cfg)
		})
		// First candidate at the strictly lowest cost wins, as in the
		// serial enumeration.
		var stepCfg *catalog.Configuration
		stepCost := curCost
		for _, pr := range probes {
			if pr.err != nil {
				return nil, pr.err
			}
			if pr.ok && pr.cost < stepCost {
				stepCfg, stepCost = pr.cfg, pr.cost
			}
		}
		if stepCfg == nil {
			break
		}
		cur, curCost = stepCfg, stepCost
	}
	if t.Opts.MinEstImprovement > 0 {
		base := math.Max(1e-9, baseCost)
		if 1-curCost/base < t.Opts.MinEstImprovement {
			cur, curCost = c0, baseCost
		}
	}
	return &WorkloadRecommendation{Config: cur, NewIndexes: cur.Diff(c0), EstCost: curCost}, nil
}
