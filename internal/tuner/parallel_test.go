package tuner

import (
	"context"
	"sync"
	"testing"

	"repro/internal/engine/exec"
	"repro/internal/engine/opt"
	"repro/internal/engine/stats"
	"repro/internal/obs"
	"repro/internal/util"
	"repro/internal/workload"
)

// parallelEnv builds a workload with two independent what-if facades so the
// serial and parallel tuners cannot share cached plans.
func parallelEnv(t testing.TB, build func() *workload.Workload) (*workload.Workload, *opt.WhatIf, *opt.WhatIf) {
	t.Helper()
	w := build()
	ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), 512, 32)
	return w, opt.NewWhatIf(opt.New(w.Schema, ds)), opt.NewWhatIf(opt.New(w.Schema, ds))
}

// assertSameQueryRec compares two query-level recommendations field by
// field; the parallel search must be byte-identical to the serial one.
func assertSameQueryRec(t *testing.T, name string, serial, par *Recommendation) {
	t.Helper()
	if serial.Config.Fingerprint() != par.Config.Fingerprint() {
		t.Fatalf("%s: config differs\nserial: %s\nparallel: %s",
			name, serial.Config.Fingerprint(), par.Config.Fingerprint())
	}
	if serial.Plan.EstTotalCost != par.Plan.EstTotalCost {
		t.Fatalf("%s: plan cost differs: %v vs %v", name, serial.Plan.EstTotalCost, par.Plan.EstTotalCost)
	}
	if serial.EstImprovement != par.EstImprovement {
		t.Fatalf("%s: improvement differs: %v vs %v", name, serial.EstImprovement, par.EstImprovement)
	}
	if len(serial.NewIndexes) != len(par.NewIndexes) {
		t.Fatalf("%s: index count differs: %d vs %d", name, len(serial.NewIndexes), len(par.NewIndexes))
	}
	for i := range serial.NewIndexes {
		if serial.NewIndexes[i].ID() != par.NewIndexes[i].ID() {
			t.Fatalf("%s: index %d differs: %s vs %s",
				name, i, serial.NewIndexes[i].ID(), par.NewIndexes[i].ID())
		}
	}
}

// testParallelDeterminism tunes every query and one workload of w at
// Parallelism 1 and 8 and requires identical results.
func testParallelDeterminism(t *testing.T, build func() *workload.Workload) {
	w, wiSerial, wiPar := parallelEnv(t, build)
	serial := New(w.Schema, wiSerial, nil, Options{Parallelism: 1})
	par := New(w.Schema, wiPar, nil, Options{Parallelism: 8})

	for _, q := range w.Queries {
		rs, err := serial.TuneQuery(context.Background(), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := par.TuneQuery(context.Background(), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameQueryRec(t, q.Name, rs, rp)
	}

	qs := w.Queries
	if len(qs) > 10 {
		qs = qs[:10]
	}
	ws, err := serial.TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := par.TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Config.Fingerprint() != wp.Config.Fingerprint() {
		t.Fatalf("workload config differs\nserial: %s\nparallel: %s",
			ws.Config.Fingerprint(), wp.Config.Fingerprint())
	}
	if ws.EstCost != wp.EstCost {
		t.Fatalf("workload cost differs: %v vs %v", ws.EstCost, wp.EstCost)
	}
}

func TestParallelDeterminismTPCH(t *testing.T) {
	testParallelDeterminism(t, func() *workload.Workload {
		return workload.TPCH("tpch-par", 2000, 9)
	})
}

func TestParallelDeterminismTPCDS(t *testing.T) {
	testParallelDeterminism(t, func() *workload.Workload {
		return workload.TPCDS("tpcds-par", 2000, 9)
	})
}

// TestParallelContinuousDeterminism checks the continuous workload loop —
// measurements, revert decisions, and the collected dataset — is identical
// at Parallelism 1 and 8.
func TestParallelContinuousDeterminism(t *testing.T) {
	run := func(parallelism int) (*WorkloadTrace, []float64) {
		w := workload.TPCH("tpch-cont-par", 2000, 9)
		ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), 512, 32)
		wi := opt.NewWhatIf(opt.New(w.Schema, ds))
		tn := New(w.Schema, wi, nil, Options{MaxNewIndexes: 3, Parallelism: parallelism})
		cont := NewContinuous(tn, exec.New(w.DB), ContinuousOpts{Iterations: 3, StopOnRegression: true, Seed: 17})
		tr, err := cont.TuneWorkloadContinuously(context.Background(), w.Queries[:5], nil)
		if err != nil {
			t.Fatal(err)
		}
		costs := make([]float64, 0, len(cont.Collected.Plans))
		for _, p := range cont.Collected.Plans {
			costs = append(costs, p.Cost)
		}
		return tr, costs
	}
	trS, costsS := run(1)
	trP, costsP := run(8)
	if trS.FinalConfig.Fingerprint() != trP.FinalConfig.Fingerprint() {
		t.Fatalf("final config differs: %s vs %s",
			trS.FinalConfig.Fingerprint(), trP.FinalConfig.Fingerprint())
	}
	if trS.InitialCost != trP.InitialCost || trS.FinalCost != trP.FinalCost {
		t.Fatalf("measured costs differ: %v/%v vs %v/%v",
			trS.InitialCost, trS.FinalCost, trP.InitialCost, trP.FinalCost)
	}
	if len(costsS) != len(costsP) {
		t.Fatalf("collected dataset size differs: %d vs %d", len(costsS), len(costsP))
	}
	for i := range costsS {
		if costsS[i] != costsP[i] {
			t.Fatalf("collected plan %d cost differs: %v vs %v", i, costsS[i], costsP[i])
		}
	}
}

// TestParallelMetricsRace exercises concurrent metric writes from the
// parallel probe pool under the race detector: several tuner invocations
// share one what-if facade at Parallelism 8 with metrics enabled, so pool
// workers hammer the shared counters, gauges, and latency histograms while
// another goroutine repeatedly snapshots the registry (racing reads against
// writes). Meaningful only under -race, but cheap enough to always run.
func TestParallelMetricsRace(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{Parallelism: 8})

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = obs.TakeSnapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := e.w.Queries[g%len(e.w.Queries)]
			if _, err := tn.TuneQuery(context.Background(), q, nil); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	// The probes above must actually have been observed — otherwise this
	// test races nothing.
	s := obs.TakeSnapshot()
	if s.Counters["whatif.cache.miss"] == 0 {
		t.Fatal("no what-if probes recorded: metric instrumentation is not wired")
	}
	if h, ok := s.Histograms["whatif.probe.latency"]; !ok || h.Count == 0 {
		t.Fatal("no probe latencies recorded")
	}
}

// TestParallelTunerRace exercises concurrent tuner invocations sharing one
// what-if facade (the continuous driver's shape) under the race detector.
func TestParallelTunerRace(t *testing.T) {
	e := newEnv(t)
	tn := New(e.w.Schema, e.whatIf, nil, Options{Parallelism: 4})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := e.w.Queries[g%len(e.w.Queries)]
			if _, err := tn.TuneQuery(context.Background(), q, nil); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}
