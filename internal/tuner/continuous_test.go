package tuner

import (
	"context"
	"sort"
	"testing"

	"repro/internal/engine/catalog"
)

func indexIDs(c *catalog.Configuration) []string {
	ids := make([]string, 0, c.Len())
	for _, ix := range c.Indexes() {
		ids = append(ids, ix.ID())
	}
	sort.Strings(ids)
	return ids
}

func sameIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestContinuousRevertRestoresPriorConfig is the regression test for
// revert-on-regression exactness (§7.9). It forces mid-run reverts with
// violent measurement noise and asserts two things:
//
//  1. Logical: after a reverted iteration the active configuration equals
//     the pre-step snapshot exactly (fingerprint and index set). This holds
//     on the configuration layer by construction — Configurations are
//     immutable and the tuner clones before every Add — and the assertion
//     pins that invariant against future mutation-based "optimizations".
//  2. Physical: the reverted step's indexes must not linger in the
//     executor's index cache. This is the part that was genuinely broken:
//     measuring the candidate configuration built its new indexes, and
//     before Continuous.dropReverted existed they stayed cached (pinned
//     storage) after the revert.
func TestContinuousRevertRestoresPriorConfig(t *testing.T) {
	e := newEnv(t)
	// The recommended index genuinely helps q6 by a large factor, so only
	// violent lognormal noise makes a measured "regression" (and hence a
	// revert). Each run also gets few revert opportunities — once a step is
	// accepted the next one usually finds no new indexes and stops — so the
	// test sweeps seeds and demands at least one revert overall (sigma 2.5
	// yields 3 across these six seeds).
	e.ex.NoiseSigma = 2.5
	tn := New(e.w.Schema, e.whatIf, nil, Options{})
	totalReverts := 0
	for seed := int64(1); seed <= 6; seed++ {
		// StopOnRegression makes the physical check below sharp: the run
		// ends at the first revert, so the reverted step's indexes cannot
		// be re-recommended and legitimately re-enter the cache later.
		cont := NewContinuous(tn, e.ex, ContinuousOpts{Iterations: 8, Seed: seed, StopOnRegression: true})

		c0 := catalog.NewConfiguration()
		// Snapshot the settled configuration as plain strings after every
		// iteration, so the revert assertion compares against a copy that
		// the tuner cannot possibly have mutated.
		priorFP := c0.Fingerprint()
		priorIDs := indexIDs(c0)
		reverts := 0
		cont.OnIter = func(r IterRecord, cfg *catalog.Configuration) {
			if r.Reverted {
				reverts++
				if got := cfg.Fingerprint(); got != priorFP {
					t.Fatalf("seed %d iter %d: reverted config fingerprint %q != pre-step snapshot %q",
						seed, r.Iter, got, priorFP)
				}
				if got := indexIDs(cfg); !sameIDs(got, priorIDs) {
					t.Fatalf("seed %d iter %d: reverted index set %v != pre-step snapshot %v",
						seed, r.Iter, got, priorIDs)
				}
			}
			priorFP = cfg.Fingerprint()
			priorIDs = indexIDs(cfg)
		}

		trace, err := cont.TuneQueryContinuously(context.Background(), e.w.Query("q6"), c0)
		if err != nil {
			t.Fatal(err)
		}
		totalReverts += reverts

		// Physical exactness: accepted configurations are nested (the tuner
		// grows cur monotonically), so every index the executor may
		// legitimately still cache is in the final configuration. Anything
		// else was built for a reverted step and must have been dropped.
		if reverts > 0 {
			inFinal := map[string]bool{}
			for _, ix := range trace.FinalConfig.Indexes() {
				inFinal[ix.ID()] = true
			}
			for _, id := range e.ex.CachedIndexes() {
				if !inFinal[id] {
					t.Errorf("seed %d: index %s belongs to a reverted configuration but is still physically cached",
						seed, id)
				}
			}
		}
		// Reset physical state between seeds so the cache check above stays
		// exact for the next run.
		for _, ix := range trace.FinalConfig.Indexes() {
			e.ex.DropIndex(ix)
		}
	}
	if totalReverts == 0 {
		t.Fatal("test setup failed to force a revert; raise NoiseSigma or change the seeds")
	}
	t.Logf("forced %d reverts across 6 seeds", totalReverts)
}
