package tuner

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/opt"
	"repro/internal/engine/query"
	"repro/internal/engine/stats"
	"repro/internal/util"
	"repro/internal/workload"
)

// seedCandidateIndexes is a frozen copy of the pre-role-classification
// candidate generator (flat 8-candidate cap, equalities + first range
// column only, ORDER BY / GROUP BY ignored). The acceptance tests use it
// to prove the tuner now recommends composites that generator could not
// produce.
func seedCandidateIndexes(q *query.Query, schema *catalog.Schema) []*catalog.Index {
	var out []*catalog.Index
	seen := map[string]bool{}
	add := func(ix *catalog.Index) {
		if id := ix.ID(); !seen[id] {
			seen[id] = true
			out = append(out, ix)
		}
	}
	appendUnique := func(xs []string, x string) []string {
		for _, v := range xs {
			if v == x {
				return xs
			}
		}
		return append(xs, x)
	}
	subtract := func(a, b []string) []string {
		var out []string
		for _, x := range a {
			found := false
			for _, y := range b {
				if x == y {
					found = true
					break
				}
			}
			if !found {
				out = append(out, x)
			}
		}
		return out
	}
	for _, table := range q.Tables {
		meta := schema.Table(table)
		if meta == nil {
			continue
		}
		var eqCols, rangeCols, joinCols []string
		for _, p := range q.PredsOn(table) {
			if p.IsEquality() {
				eqCols = appendUnique(eqCols, p.Column)
			} else {
				rangeCols = appendUnique(rangeCols, p.Column)
			}
		}
		for _, j := range q.JoinsOn(table) {
			joinCols = appendUnique(joinCols, j.ColumnFor(table))
		}
		used := q.ColumnsUsed(table)
		var key []string
		key = append(key, eqCols...)
		if len(rangeCols) > 0 {
			key = append(key, rangeCols[0])
		}
		if len(key) > 0 {
			add(&catalog.Index{Table: table, KeyColumns: key})
			if inc := subtract(used, key); len(inc) > 0 {
				add(&catalog.Index{Table: table, KeyColumns: key, IncludedColumns: inc})
			}
		}
		for _, c := range append(append([]string{}, eqCols...), rangeCols...) {
			add(&catalog.Index{Table: table, KeyColumns: []string{c}})
		}
		for _, c := range joinCols {
			add(&catalog.Index{Table: table, KeyColumns: []string{c}})
			if inc := subtract(used, []string{c}); len(inc) > 0 {
				add(&catalog.Index{Table: table, KeyColumns: []string{c}, IncludedColumns: inc})
			}
		}
		if len(joinCols) > 0 && len(eqCols) > 0 {
			add(&catalog.Index{Table: table, KeyColumns: append([]string{joinCols[0]}, eqCols[0])})
		}
		if len(q.Aggs) > 0 && len(used) >= 2 && meta.Rows >= 1000 {
			add(&catalog.Index{Table: table, Kind: catalog.Columnstore})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		var ri, rj int64
		if t := schema.Table(out[i].Table); t != nil {
			ri = t.Rows
		}
		if t := schema.Table(out[j].Table); t != nil {
			rj = t.Rows
		}
		if ri != rj {
			return ri > rj
		}
		return out[i].ID() < out[j].ID()
	})
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

func newCompositeEnv(t testing.TB, name string, rows int, seed int64) (*workload.Workload, *opt.WhatIf) {
	t.Helper()
	w := workload.Composite(name, rows, seed)
	ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), 512, 32)
	return w, opt.NewWhatIf(opt.New(w.Schema, ds))
}

// TestCompositeRecommendationBeyondSeedGenerator pins the acceptance
// criterion of the candidate-generation rebuild: on a TPC-H-like workload
// the tuner recommends at least one multi-column composite the seed
// generator could not produce, while respecting every budget.
func TestCompositeRecommendationBeyondSeedGenerator(t *testing.T) {
	w, whatIf := newCompositeEnv(t, "composite-accept", 4000, 11)
	// MaxNewIndexes is set above the column-fraction budget (20% of the
	// schema's 37 columns = 7) so the %-of-columns budget is the binding
	// count constraint, as in the ML-powered-tuning benchmarks.
	opts := Options{
		Parallelism:        1,
		MaxNewIndexes:      8,
		MaxIndexesPerTable: 2,
		MaxColumnFraction:  0.2,
		StorageBudget:      64 << 20,
	}
	tn := New(w.Schema, whatIf, nil, opts)
	rec, err := tn.TuneWorkload(context.Background(), w.Queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewIndexes) == 0 {
		t.Fatal("composite workload should yield recommendations")
	}
	// Everything the seed generator could ever emit for these queries.
	seedSet := map[string]bool{}
	for _, q := range w.Queries {
		for _, ix := range seedCandidateIndexes(q, w.Schema) {
			seedSet[ix.ID()] = true
		}
	}
	var beyond *catalog.Index
	for _, ix := range rec.NewIndexes {
		if len(ix.KeyColumns) >= 2 && !seedSet[ix.ID()] {
			beyond = ix
		}
	}
	if beyond == nil {
		got := make([]string, 0, len(rec.NewIndexes))
		for _, ix := range rec.NewIndexes {
			got = append(got, ix.ID())
		}
		t.Fatalf("no recommended composite beyond the seed generator; got %v", got)
	}

	// Budget compliance on the final recommendation.
	var cols int
	for _, name := range w.Schema.TableNames() {
		cols += len(w.Schema.Table(name).Columns)
	}
	colBudget := int(opts.MaxColumnFraction * float64(cols))
	if len(rec.NewIndexes) > colBudget {
		t.Fatalf("column-fraction budget violated: %d added > %d", len(rec.NewIndexes), colBudget)
	}
	perTable := map[string]int{}
	var bytes int64
	for _, ix := range rec.NewIndexes {
		perTable[ix.Table]++
		bytes += ix.EstimatedBytes(w.Schema.Table(ix.Table))
		if perTable[ix.Table] > opts.MaxIndexesPerTable {
			t.Fatalf("per-table budget violated on %s", ix.Table)
		}
	}
	if bytes > opts.StorageBudget {
		t.Fatalf("storage budget violated: %d > %d", bytes, opts.StorageBudget)
	}
}

// TestSecondRangeComposite pins the query-level mechanism behind the
// acceptance test: on c6, where the selective range column is listed
// second, the recommended index seeks (l_returnflag, l_shipdate) — a key
// the first-range-only seed generator cannot emit.
func TestSecondRangeComposite(t *testing.T) {
	w, whatIf := newCompositeEnv(t, "composite-c6", 4000, 11)
	tn := New(w.Schema, whatIf, nil, Options{Parallelism: 1})
	q := w.Query("c6")
	rec, err := tn.TuneQuery(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	seedSet := map[string]bool{}
	for _, ix := range seedCandidateIndexes(q, w.Schema) {
		seedSet[ix.ID()] = true
	}
	var beyond bool
	for _, ix := range rec.NewIndexes {
		if len(ix.KeyColumns) >= 2 && ix.KeyColumns[0] == "l_returnflag" &&
			ix.KeyColumns[1] == "l_shipdate" && !seedSet[ix.ID()] {
			beyond = true
		}
	}
	if !beyond {
		t.Fatalf("expected an (l_returnflag, l_shipdate) seek composite beyond the seed generator; got %v", rec.NewIndexes)
	}
}

func TestCompressWorkload(t *testing.T) {
	w := workload.Composite("composite-cw", 1500, 5)
	qs := workload.Replicate(w.Queries[:4], 3) // 12 queries, 4 templates
	qs[0].Weight = 2.5
	got := CompressWorkload(qs)
	if len(got) != 4 {
		t.Fatalf("expected 4 representatives, got %d", len(got))
	}
	// First-seen order, weights summed (2.5 + 1 + 1 for template c1).
	if got[0].Name != "c1" || math.Abs(got[0].Weight-4.5) > 1e-12 {
		t.Fatalf("representative c1: name %s weight %v", got[0].Name, got[0].Weight)
	}
	if got[1].Weight != 3 {
		t.Fatalf("representative %s weight %v, want 3", got[1].Name, got[1].Weight)
	}
	// Inputs are not mutated.
	if qs[0].Weight != 2.5 || qs[1].Weight != 1 {
		t.Fatal("CompressWorkload mutated its input")
	}
	qs[0].Weight = 1
}

// TestCompressedTuningMatchesFull pins the compression acceptance
// criterion: on a duplicate-heavy workload, compressed tuning returns the
// identical recommendation for at least 3× fewer what-if probes.
func TestCompressedTuningMatchesFull(t *testing.T) {
	const copies = 6
	w, whatIfFull := newCompositeEnv(t, "composite-dup", 3000, 13)
	qs := workload.Replicate(w.Queries, copies)

	full := New(w.Schema, whatIfFull, nil, Options{Parallelism: 1})
	recFull, err := full.TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	callsFull, _ := whatIfFull.Stats()

	_, whatIfComp := newCompositeEnv(t, "composite-dup", 3000, 13)
	comp := New(w.Schema, whatIfComp, nil, Options{Parallelism: 1, Compress: true})
	recComp, err := comp.TuneWorkload(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	callsComp, _ := whatIfComp.Stats()

	idsOf := func(r *WorkloadRecommendation) []string {
		out := make([]string, 0, len(r.NewIndexes))
		for _, ix := range r.NewIndexes {
			out = append(out, ix.ID())
		}
		sort.Strings(out)
		return out
	}
	fullIDs, compIDs := idsOf(recFull), idsOf(recComp)
	if len(fullIDs) != len(compIDs) {
		t.Fatalf("recommendations differ: %v vs %v", fullIDs, compIDs)
	}
	for i := range fullIDs {
		if fullIDs[i] != compIDs[i] {
			t.Fatalf("recommendations differ: %v vs %v", fullIDs, compIDs)
		}
	}
	// Weighted workload costs agree up to float summation order.
	if base := math.Max(recFull.EstCost, 1e-9); math.Abs(recFull.EstCost-recComp.EstCost)/base > 1e-9 {
		t.Fatalf("workload costs diverge: %v vs %v", recFull.EstCost, recComp.EstCost)
	}
	if callsFull < 3*callsComp {
		t.Fatalf("compression should cut what-if probes >= 3x: full %d, compressed %d", callsFull, callsComp)
	}
}

// TestBudgetsEnforcedAtQueryGate checks the new budgets bind inside
// TuneQuery's probe loop, not only at workload assembly.
func TestBudgetsEnforcedAtQueryGate(t *testing.T) {
	w, whatIf := newCompositeEnv(t, "composite-gate", 3000, 7)
	tn := New(w.Schema, whatIf, nil, Options{Parallelism: 1, MaxIndexesPerTable: 1})
	q := w.Query("c1")
	rec, err := tn.TuneQuery(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	perTable := map[string]int{}
	for _, ix := range rec.NewIndexes {
		if perTable[ix.Table]++; perTable[ix.Table] > 1 {
			t.Fatalf("per-table budget violated at query level: %v", rec.NewIndexes)
		}
	}
}
