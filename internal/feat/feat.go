// Package feat implements the paper's plan featurization (§3): each plan
// becomes a fixed-dimension vector per feature channel over the operator
// key space (Operator)_(Mode)_(Parallelism), and plan pairs are combined
// with one of the transforms of §3.3 (concat, pair_diff, pair_diff_ratio,
// pair_diff_normalized).
//
// Only optimizer-estimated quantities are used — never execution actuals —
// because the tuner must infer on hypothetical plans that have never run
// (the paper's "learn from information in estimated query plans" principle).
package feat

import (
	"fmt"
	"sync"

	"repro/internal/engine/plan"
	"repro/internal/util"
)

// Channel identifies one way of weighting plan operators (paper Table 1).
type Channel int

// Feature channels.
const (
	// EstNodeCost uses the optimizer's estimated node cost as the weight.
	EstNodeCost Channel = iota
	// EstBytesProcessed uses the estimated bytes processed by a node.
	EstBytesProcessed
	// EstRows uses the estimated rows produced by a node.
	EstRows
	// EstBytes uses the estimated bytes output by a node.
	EstBytes
	// LeafWeightEstRowsWeightedSum propagates leaf estimated-row weights
	// up the tree, weighting by child height (structural information).
	LeafWeightEstRowsWeightedSum
	// LeafWeightEstBytesWeightedSum is the bytes variant of the above.
	LeafWeightEstBytesWeightedSum
	numChannels
)

// NumChannels is the number of defined feature channels.
const NumChannels = int(numChannels)

var channelNames = [...]string{
	"EstNodeCost", "EstBytesProcessed", "EstRows", "EstBytes",
	"LeafWeightEstRowsWeightedSum", "LeafWeightEstBytesWeightedSum",
}

// String implements fmt.Stringer.
func (c Channel) String() string {
	if int(c) < len(channelNames) {
		return channelNames[c]
	}
	return fmt.Sprintf("Channel(%d)", int(c))
}

// DefaultChannels is the channel subset used throughout the paper's main
// experiments: a measure of work plus a structural channel.
func DefaultChannels() []Channel {
	return []Channel{EstNodeCost, LeafWeightEstBytesWeightedSum}
}

// PlanVector computes one channel's vector for a plan: one attribute per
// operator key, summing the weights of operators sharing a key.
func PlanVector(p *plan.Plan, c Channel) []float64 {
	return PlanVectorInto(p, c, make([]float64, plan.NumKeys))
}

// PlanVectorInto computes one channel's vector into v, reusing its
// backing array when the capacity suffices (the vector is re-zeroed
// first). Bit-identical to PlanVector.
func PlanVectorInto(p *plan.Plan, c Channel, v []float64) []float64 {
	if cap(v) < plan.NumKeys {
		v = make([]float64, plan.NumKeys)
	}
	v = v[:plan.NumKeys]
	for i := range v {
		v[i] = 0
	}
	switch c {
	case LeafWeightEstRowsWeightedSum:
		leafWeighted(p.Root, v, func(n *plan.Node) float64 { return n.EstRows })
	case LeafWeightEstBytesWeightedSum:
		leafWeighted(p.Root, v, func(n *plan.Node) float64 { return n.EstBytesOut() })
	default:
		p.Root.Walk(func(n *plan.Node) {
			var w float64
			switch c {
			case EstNodeCost:
				w = n.EstCost
			case EstBytesProcessed:
				w = n.EstBytesProcessed
			case EstRows:
				w = n.EstRows
			case EstBytes:
				w = n.EstBytesOut()
			}
			v[n.Key()] += w
		})
	}
	return v
}

// leafWeighted implements the WeightedSum channels: each leaf has weight
// leafW(n); an internal node's value is the sum over children of
// weight(child) × height(child), and its weight is the sum of child
// weights. Structural changes (join order, extra operators) shift both
// child weights and heights, so the flattened vector still encodes shape.
func leafWeighted(root *plan.Node, v []float64, leafW func(*plan.Node) float64) {
	type wh struct {
		weight float64
		height float64
	}
	var visit func(n *plan.Node) wh
	visit = func(n *plan.Node) wh {
		if n.IsLeaf() {
			w := leafW(n)
			v[n.Key()] += w
			return wh{weight: w, height: 1}
		}
		var sumW, value, maxH float64
		for _, c := range n.Children {
			cw := visit(c)
			sumW += cw.weight
			value += cw.weight * cw.height
			if cw.height > maxH {
				maxH = cw.height
			}
		}
		v[n.Key()] += value
		return wh{weight: sumW, height: maxH + 1}
	}
	visit(root)
}

// PairTransform identifies how two plan vectors are combined (§3.3).
type PairTransform int

// Pair transforms.
const (
	// Concat concatenates the two plans' channel vectors.
	Concat PairTransform = iota
	// PairDiff takes the attribute-wise difference P2 - P1.
	PairDiff
	// PairDiffRatio divides the difference by P1's attribute, clipping on
	// division by zero.
	PairDiffRatio
	// PairDiffNormalized divides the difference by the sum of P1's
	// channel attributes, avoiding per-attribute zero denominators.
	PairDiffNormalized
	numTransforms
)

// NumTransforms is the number of defined pair transforms.
const NumTransforms = int(numTransforms)

var transformNames = [...]string{"concat", "pair_diff", "pair_diff_ratio", "pair_diff_normalized"}

// String implements fmt.Stringer.
func (t PairTransform) String() string {
	if int(t) < len(transformNames) {
		return transformNames[t]
	}
	return fmt.Sprintf("PairTransform(%d)", int(t))
}

// ratioClip bounds pair_diff_ratio attributes, the paper's clipping on
// division by zero (e.g. 10^4).
const ratioClip = 1e4

// Featurizer converts plans and plan pairs into model inputs.
type Featurizer struct {
	Channels  []Channel
	Transform PairTransform
	// IncludeTotalCost appends both plans' optimizer-estimated total costs
	// (the paper also uses the estimated plan cost as a feature).
	IncludeTotalCost bool
}

// Default returns the configuration used for the paper's headline results:
// EstNodeCost + LeafWeightEstBytesWeightedSum with pair_diff_normalized.
func Default() *Featurizer {
	return &Featurizer{
		Channels:         DefaultChannels(),
		Transform:        PairDiffNormalized,
		IncludeTotalCost: true,
	}
}

// PlanDim returns the dimensionality of a single-plan vector.
func (f *Featurizer) PlanDim() int {
	d := len(f.Channels) * plan.NumKeys
	if f.IncludeTotalCost {
		d++
	}
	return d
}

// PairDim returns the dimensionality of a pair vector.
func (f *Featurizer) PairDim() int {
	d := len(f.Channels) * plan.NumKeys
	if f.Transform == Concat {
		d *= 2
	}
	if f.IncludeTotalCost {
		d += 2
	}
	return d
}

// KeyGroups returns, for each attribute of the pair vector, the operator
// key it belongs to (or -1 for plan-level features). The partially-
// connected DNN uses this to wire per-key blocks (§6.2.1).
func (f *Featurizer) KeyGroups() []int {
	var g []int
	reps := 1
	if f.Transform == Concat {
		reps = 2
	}
	for r := 0; r < reps; r++ {
		for range f.Channels {
			for k := 0; k < plan.NumKeys; k++ {
				g = append(g, k)
			}
		}
	}
	if f.IncludeTotalCost {
		g = append(g, -1, -1)
	}
	return g
}

// ConfigEqual reports whether two featurizers emit identically laid-out
// vectors: same channels in the same order, same pair transform, and the
// same total-cost tail. Models may only be evaluated on vectors produced by
// a config-equal featurizer.
func (f *Featurizer) ConfigEqual(g *Featurizer) bool {
	if g == nil || f.Transform != g.Transform || f.IncludeTotalCost != g.IncludeTotalCost {
		return false
	}
	if len(f.Channels) != len(g.Channels) {
		return false
	}
	for i, c := range f.Channels {
		if g.Channels[i] != c {
			return false
		}
	}
	return true
}

// Plan featurizes a single plan (concatenated channels, plus the total
// estimated cost when configured). Used by the plan-level regressor.
func (f *Featurizer) Plan(p *plan.Plan) []float64 {
	out := make([]float64, 0, f.PlanDim())
	for _, c := range f.Channels {
		out = append(out, PlanVector(p, c)...)
	}
	if f.IncludeTotalCost {
		out = append(out, p.EstTotalCost)
	}
	return out
}

// Pair featurizes a plan pair (P1, P2) with the configured transform.
func (f *Featurizer) Pair(p1, p2 *plan.Plan) []float64 {
	return f.PairInto(p1, p2, make([]float64, 0, f.PairDim()))
}

// pairScratch pools the per-channel plan vectors PairInto works from.
type pairScratch struct{ v1, v2 []float64 }

var pairPool = sync.Pool{New: func() any { return new(pairScratch) }}

// PairInto featurizes a plan pair into out, truncating it first and
// reusing its capacity. Channel vectors live in pooled scratch, so a warm
// out buffer makes featurization allocation-free. Bit-identical to Pair.
func (f *Featurizer) PairInto(p1, p2 *plan.Plan, out []float64) []float64 {
	s := pairPool.Get().(*pairScratch)
	out = out[:0]
	for _, c := range f.Channels {
		s.v1 = PlanVectorInto(p1, c, s.v1)
		s.v2 = PlanVectorInto(p2, c, s.v2)
		out = f.appendPair(out, s.v1, s.v2)
	}
	pairPool.Put(s)
	if f.IncludeTotalCost {
		out = append(out, p1.EstTotalCost, p2.EstTotalCost)
	}
	return out
}

// appendPair appends one channel's transformed pair attributes to out.
func (f *Featurizer) appendPair(out, v1, v2 []float64) []float64 {
	switch f.Transform {
	case Concat:
		out = append(out, v1...)
		out = append(out, v2...)
	case PairDiff:
		for i := range v1 {
			out = append(out, v2[i]-v1[i])
		}
	case PairDiffRatio:
		for i := range v1 {
			out = append(out, util.SafeDiv(v2[i]-v1[i], v1[i], ratioClip))
		}
	case PairDiffNormalized:
		denom := util.Sum(v1)
		for i := range v1 {
			out = append(out, util.SafeDiv(v2[i]-v1[i], denom, ratioClip))
		}
	}
	return out
}

// PairFromVectors combines pre-computed per-channel plan vectors into a
// pair vector. This is the telemetry path of §2.3: databases ship
// featurized plans, and cross-database training recombines them without
// ever seeing raw plan trees. v1s/v2s must follow f.Channels order.
func (f *Featurizer) PairFromVectors(v1s, v2s [][]float64, estCost1, estCost2 float64) []float64 {
	return f.AppendPairFromVectors(make([]float64, 0, f.PairDim()), v1s, v2s, estCost1, estCost2)
}

// AppendPairFromVectors is PairFromVectors with append semantics: the pair
// attributes are appended to out and the extended slice returned, so a
// caller batching many pairs can pack them into one flat slab without a
// per-pair allocation. Bit-identical to PairFromVectors.
func (f *Featurizer) AppendPairFromVectors(out []float64, v1s, v2s [][]float64, estCost1, estCost2 float64) []float64 {
	for ci := range v1s {
		out = f.appendPair(out, v1s[ci], v2s[ci])
	}
	if f.IncludeTotalCost {
		out = append(out, estCost1, estCost2)
	}
	return out
}

// AttributeNames labels the pair-vector attributes for debugging and
// feature-importance reporting.
func (f *Featurizer) AttributeNames() []string {
	var names []string
	emit := func(prefix string) {
		for _, c := range f.Channels {
			for k := 0; k < plan.NumKeys; k++ {
				names = append(names, fmt.Sprintf("%s%s:%s", prefix, c, plan.KeyName(k)))
			}
		}
	}
	if f.Transform == Concat {
		emit("p1:")
		emit("p2:")
	} else {
		emit(f.Transform.String() + ":")
	}
	if f.IncludeTotalCost {
		names = append(names, "p1:EstTotalCost", "p2:EstTotalCost")
	}
	return names
}
