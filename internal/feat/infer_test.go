package feat

import (
	"math"
	"testing"

	"repro/internal/engine/plan"
	"repro/internal/race"
)

// refPair is the pre-optimization featurization: fresh channel vectors
// combined by PairFromVectors. PairInto must match it bit for bit.
func refPair(f *Featurizer, p1, p2 *plan.Plan) []float64 {
	v1s := make([][]float64, len(f.Channels))
	v2s := make([][]float64, len(f.Channels))
	for i, c := range f.Channels {
		v1s[i] = PlanVector(p1, c)
		v2s[i] = PlanVector(p2, c)
	}
	return f.PairFromVectors(v1s, v2s, p1.EstTotalCost, p2.EstTotalCost)
}

func TestPairIntoMatchesReferenceAcrossTransforms(t *testing.T) {
	p1 := twoJoinPlan(1000, 100)
	p2 := twoJoinPlan(400, 900)
	for tr := 0; tr < NumTransforms; tr++ {
		for _, inc := range []bool{true, false} {
			f := &Featurizer{Channels: DefaultChannels(), Transform: PairTransform(tr), IncludeTotalCost: inc}
			want := refPair(f, p1, p2)
			got := f.PairInto(p1, p2, nil)
			alloc := f.Pair(p1, p2)
			if len(got) != len(want) || len(alloc) != len(want) {
				t.Fatalf("%v: dim %d/%d vs %d", f.Transform, len(got), len(alloc), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) ||
					math.Float64bits(alloc[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v inc=%v attr %d: into=%v alloc=%v ref=%v", f.Transform, inc, i, got[i], alloc[i], want[i])
				}
			}
			// Reusing the buffer must reproduce the same vector.
			again := f.PairInto(p1, p2, got)
			for i := range want {
				if math.Float64bits(again[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v: reused buffer attr %d differs", f.Transform, i)
				}
			}
		}
	}
}

func TestPlanVectorIntoMatchesPlanVector(t *testing.T) {
	p := twoJoinPlan(1000, 100)
	buf := make([]float64, 0)
	for c := Channel(0); c < Channel(NumChannels); c++ {
		want := PlanVector(p, c)
		buf = PlanVectorInto(p, c, buf)
		for i := range want {
			if math.Float64bits(buf[i]) != math.Float64bits(want[i]) {
				t.Fatalf("channel %v attr %d: %v vs %v", c, i, buf[i], want[i])
			}
		}
	}
}

func TestPairIntoDoesNotAllocate(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are not stable under -race (sync.Pool drops Puts)")
	}
	p1 := twoJoinPlan(1000, 100)
	p2 := twoJoinPlan(400, 900)
	f := Default()
	buf := f.PairInto(p1, p2, nil) // warm the buffer and scratch pool
	allocs := testing.AllocsPerRun(200, func() {
		buf = f.PairInto(p1, p2, buf)
	})
	if allocs != 0 {
		t.Fatalf("PairInto allocated %.1f times per run, want 0", allocs)
	}
}
