package feat

import (
	"math"
	"testing"

	"repro/internal/engine/plan"
	"repro/internal/engine/query"
)

// twoJoinPlan builds: Agg(HashJoin(Scan(a), Seek(b))).
func twoJoinPlan(scanRows, seekRows float64) *plan.Plan {
	scan := &plan.Node{Op: plan.TableScan, Table: "a", EstRows: scanRows, EstRowWidth: 8, EstCost: scanRows, EstBytesProcessed: scanRows * 8}
	seek := &plan.Node{Op: plan.IndexSeek, Table: "b", EstRows: seekRows, EstRowWidth: 8, EstCost: seekRows / 10, EstBytesProcessed: seekRows * 8}
	join := &plan.Node{Op: plan.HashJoin, Children: []*plan.Node{scan, seek}, EstRows: scanRows / 2, EstRowWidth: 16, EstCost: scanRows / 4, EstBytesProcessed: (scanRows + seekRows) * 8}
	agg := &plan.Node{Op: plan.HashAggregate, Children: []*plan.Node{join}, EstRows: 10, EstRowWidth: 16, EstCost: 5, EstBytesProcessed: scanRows * 8}
	return &plan.Plan{Root: agg, Query: &query.Query{Name: "q"}, EstTotalCost: scanRows + seekRows/10 + scanRows/4 + 5}
}

func TestPlanVectorSumsByKey(t *testing.T) {
	p := twoJoinPlan(1000, 100)
	v := PlanVector(p, EstNodeCost)
	if got := v[plan.KeyIndex(plan.TableScan, plan.Row, plan.Serial)]; got != 1000 {
		t.Fatalf("scan weight: %v", got)
	}
	if got := v[plan.KeyIndex(plan.IndexSeek, plan.Row, plan.Serial)]; got != 10 {
		t.Fatalf("seek weight: %v", got)
	}
	// Two operators with the same key sum.
	p2 := twoJoinPlan(1000, 100)
	p2.Root.Children[0].Children[1] = &plan.Node{Op: plan.TableScan, Table: "b", EstRows: 50, EstCost: 70}
	v2 := PlanVector(p2, EstNodeCost)
	if got := v2[plan.KeyIndex(plan.TableScan, plan.Row, plan.Serial)]; got != 1070 {
		t.Fatalf("same-key sum: %v", got)
	}
	// Absent keys are zero.
	if v[plan.KeyIndex(plan.MergeJoin, plan.Row, plan.Serial)] != 0 {
		t.Fatal("absent operator must be zero")
	}
}

func TestChannelsDiffer(t *testing.T) {
	p := twoJoinPlan(1000, 100)
	seen := map[string]bool{}
	for c := Channel(0); c < Channel(NumChannels); c++ {
		v := PlanVector(p, c)
		sig := ""
		for _, x := range v {
			sig += "|"
			sig += string(rune(int('a') + int(math.Mod(x, 26))))
		}
		if seen[sig] {
			t.Logf("channel %v looks identical to an earlier channel (possible but suspicious)", c)
		}
		seen[sig] = true
		var sum float64
		for _, x := range v {
			sum += x
		}
		if sum == 0 {
			t.Fatalf("channel %v produced an all-zero vector", c)
		}
	}
}

func TestLeafWeightedEncodesStructure(t *testing.T) {
	// Same operator multiset, different shape: join(join(a,b),c) vs
	// join(a,join(b,c)) must produce different LeafWeight vectors.
	leaf := func(table string, rows float64) *plan.Node {
		return &plan.Node{Op: plan.TableScan, Table: table, EstRows: rows, EstRowWidth: 8}
	}
	join := func(l, r *plan.Node) *plan.Node {
		return &plan.Node{Op: plan.HashJoin, Children: []*plan.Node{l, r}, EstRows: 10, EstRowWidth: 16}
	}
	left := &plan.Plan{Root: join(join(leaf("a", 100), leaf("b", 200)), leaf("c", 300)), Query: &query.Query{}}
	right := &plan.Plan{Root: join(leaf("a", 100), join(leaf("b", 200), leaf("c", 300))), Query: &query.Query{}}
	vl := PlanVector(left, LeafWeightEstRowsWeightedSum)
	vr := PlanVector(right, LeafWeightEstRowsWeightedSum)
	same := true
	for i := range vl {
		if vl[i] != vr[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different join shapes must produce different structural vectors")
	}
	// The flat EstRows channel cannot distinguish them (same multiset).
	fl := PlanVector(left, EstRows)
	fr := PlanVector(right, EstRows)
	for i := range fl {
		if fl[i] != fr[i] {
			t.Fatal("flat channel should NOT distinguish these shapes (sanity)")
		}
	}
}

func TestPairTransforms(t *testing.T) {
	p1 := twoJoinPlan(1000, 100)
	p2 := twoJoinPlan(500, 100)
	for tr := PairTransform(0); tr < PairTransform(NumTransforms); tr++ {
		f := &Featurizer{Channels: DefaultChannels(), Transform: tr, IncludeTotalCost: true}
		v := f.Pair(p1, p2)
		if len(v) != f.PairDim() {
			t.Fatalf("%v: dim %d != declared %d", tr, len(v), f.PairDim())
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%v: attribute %d is %v", tr, i, x)
			}
		}
	}
}

func TestPairDiffIsAntisymmetricish(t *testing.T) {
	p1 := twoJoinPlan(1000, 100)
	p2 := twoJoinPlan(500, 300)
	f := &Featurizer{Channels: []Channel{EstNodeCost}, Transform: PairDiff}
	a := f.Pair(p1, p2)
	b := f.Pair(p2, p1)
	for i := range a {
		if a[i] != -b[i] {
			t.Fatalf("pair_diff should be antisymmetric at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPairSamePlanIsZeroDiff(t *testing.T) {
	p := twoJoinPlan(1000, 100)
	f := &Featurizer{Channels: DefaultChannels(), Transform: PairDiffNormalized}
	v := f.Pair(p, p)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("identical plans must diff to zero, attr %d = %v", i, x)
		}
	}
}

func TestPairDiffRatioClipping(t *testing.T) {
	p1 := twoJoinPlan(1000, 100)
	p2 := twoJoinPlan(1000, 100)
	// Give p2 an operator whose key is zero in p1 -> division by zero.
	p2.Root.Children[0].Op = plan.MergeJoin
	f := &Featurizer{Channels: []Channel{EstNodeCost}, Transform: PairDiffRatio}
	v := f.Pair(p1, p2)
	clipped := false
	for _, x := range v {
		if x == 1e4 || x == -1e4 {
			clipped = true
		}
		if math.Abs(x) > 1e4 {
			t.Fatalf("ratio attribute exceeds clip: %v", x)
		}
	}
	if !clipped {
		t.Fatal("expected at least one clipped attribute")
	}
}

func TestConcatKeepsBothPlans(t *testing.T) {
	p1 := twoJoinPlan(1000, 100)
	p2 := twoJoinPlan(500, 100)
	f := &Featurizer{Channels: []Channel{EstNodeCost}, Transform: Concat}
	v := f.Pair(p1, p2)
	if len(v) != 2*plan.NumKeys {
		t.Fatalf("concat dim: %d", len(v))
	}
	k := plan.KeyIndex(plan.TableScan, plan.Row, plan.Serial)
	if v[k] != 1000 || v[plan.NumKeys+k] != 500 {
		t.Fatal("concat halves wrong")
	}
}

func TestKeyGroups(t *testing.T) {
	f := Default()
	g := f.KeyGroups()
	if len(g) != f.PairDim() {
		t.Fatalf("key groups len %d != dim %d", len(g), f.PairDim())
	}
	if g[len(g)-1] != -1 || g[len(g)-2] != -1 {
		t.Fatal("total-cost features must be ungrouped")
	}
	if g[0] != 0 || g[1] != 1 {
		t.Fatal("groups must follow key order within a channel")
	}
	// Concat doubles the group list.
	fc := &Featurizer{Channels: []Channel{EstNodeCost}, Transform: Concat}
	if len(fc.KeyGroups()) != 2*plan.NumKeys {
		t.Fatal("concat group length wrong")
	}
}

func TestAttributeNames(t *testing.T) {
	f := Default()
	names := f.AttributeNames()
	if len(names) != f.PairDim() {
		t.Fatalf("names %d != dim %d", len(names), f.PairDim())
	}
	fc := &Featurizer{Channels: []Channel{EstNodeCost}, Transform: Concat}
	names = fc.AttributeNames()
	if len(names) != fc.PairDim() {
		t.Fatal("concat names wrong length")
	}
}

func TestPlanFeaturesForRegressor(t *testing.T) {
	f := Default()
	p := twoJoinPlan(1000, 100)
	v := f.Plan(p)
	if len(v) != f.PlanDim() {
		t.Fatalf("plan dim %d != %d", len(v), f.PlanDim())
	}
	if v[len(v)-1] != p.EstTotalCost {
		t.Fatal("last plan feature must be the total cost")
	}
}

// TestPairFromVectorsEdgeCases drives the ratio transforms through raw
// vectors containing zeros, negatives, and ±Inf (the telemetry path accepts
// arbitrary shipped vectors, so nothing guarantees well-formed plan sums).
// Contract: attributes clip symmetrically at ±1e4, a 0-over-0 attribute is
// 0 (not a clip), and no attribute is ever NaN. The NaN rows fail on the
// pre-fix SafeDiv.
func TestPairFromVectorsEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	const clip = 1e4
	for _, tr := range []PairTransform{PairDiffRatio, PairDiffNormalized} {
		f := &Featurizer{Channels: []Channel{EstNodeCost}, Transform: tr}
		cases := []struct {
			name   string
			v1, v2 []float64
		}{
			{"both zero", []float64{0, 0, 0}, []float64{0, 0, 0}},
			{"zero denom", []float64{0, 0, 0}, []float64{5, -5, 0}},
			{"negatives", []float64{-2, 4, -8}, []float64{2, -4, 8}},
			{"huge ratio", []float64{1e-12, 1, 0}, []float64{1e12, 1, -1e12}},
			{"pos inf", []float64{inf, 1, 0}, []float64{0, inf, inf}},
			{"neg inf", []float64{-inf, inf, 1}, []float64{inf, -inf, -inf}},
		}
		for _, c := range cases {
			out := f.PairFromVectors([][]float64{c.v1}, [][]float64{c.v2}, 0, 0)
			for i, v := range out {
				if math.IsNaN(v) {
					t.Errorf("%s/%s: attribute %d is NaN", tr, c.name, i)
				}
				if v < -clip || v > clip {
					t.Errorf("%s/%s: attribute %d = %v outside ±%v", tr, c.name, i, v, clip)
				}
			}
		}
		// 0/0 attributes must read 0, not a clip value.
		out := f.PairFromVectors([][]float64{{0, 1}}, [][]float64{{0, 2}}, 0, 0)
		if out[0] != 0 {
			t.Errorf("%s: 0-over-0 attribute = %v, want 0", tr, out[0])
		}
		// Symmetric clipping: swapping the plans flips the clipped sign.
		hi := f.PairFromVectors([][]float64{{1e-12}}, [][]float64{{1}}, 0, 0)
		lo := f.PairFromVectors([][]float64{{1}}, [][]float64{{1e-12}}, 0, 0)
		if hi[0] != clip {
			t.Errorf("%s: blow-up ratio = %v, want %v", tr, hi[0], clip)
		}
		if tr == PairDiffRatio && lo[0] != -1+1e-12 {
			// -1+eps: (v2-v1)/v1 with v2 ~ 0 is bounded, no clip expected.
			t.Errorf("%s: shrink ratio = %v, want ~-1", tr, lo[0])
		}
	}
}
