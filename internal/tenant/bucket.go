package tenant

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token bucket gating a tenant's synchronous-plane requests:
// rate tokens accrue per second up to burst, each admitted request spends
// one. A nil Bucket admits everything (rate limiting disabled). Callers
// pass the clock explicitly so admission decisions are testable without
// sleeping.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewBucket builds a bucket admitting rate requests/second with the given
// burst. rate <= 0 returns nil — the "unlimited" bucket.
func NewBucket(rate float64, burst int) *Bucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, 2*rate)
	}
	return &Bucket{rate: rate, burst: b, tokens: b}
}

// Allow spends one token when available. When the bucket is empty it
// returns false plus the duration until a token accrues — the
// Retry-After the HTTP layer surfaces with the 429.
func (b *Bucket) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / b.rate
	return false, time.Duration(math.Ceil(wait * float64(time.Second)))
}
