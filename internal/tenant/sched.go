package tenant

import (
	"errors"
	"sync"

	"repro/internal/obs"
)

// Scheduler metric handles (see DESIGN.md §14).
var (
	mSchedQueued   = obs.G("server.jobs.queue.depth")
	mSchedRejected = obs.C("server.jobs.rejected")
)

// ErrQueueFull is returned by Submit when the submitting tenant's queue is
// at capacity. The HTTP layer surfaces it as a per-tenant 429 — other
// tenants' queues are unaffected.
var ErrQueueFull = errors.New("tenant: job queue full")

// ErrSchedulerClosed is returned by Submit after Close.
var ErrSchedulerClosed = errors.New("tenant: scheduler closed")

// Scheduler is the fair-share job queue of the asynchronous tuning plane:
// each tenant owns a bounded FIFO, and workers drain the set with weighted
// round-robin — a tenant with weight w receives at most w consecutive
// dequeues before the rotation moves on, so a tenant flooding its queue
// delays its own jobs, not its neighbours'.
//
// Fairness bound: with active tenants T and weights w_t, a job at position
// k in tenant t's queue is dequeued after at most
// ceil(k/w_t) * Σ_{u≠t} w_u + k other jobs — independent of how deep any
// other tenant's queue is. TestSchedulerFairness pins this.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	perTenantCap  int
	weights       map[string]int
	defaultWeight int

	queues map[string]*tenantQueue
	ring   []string // rotation order: tenants with queued work, first-submit order
	pos    int      // current ring slot
	served int      // items handed to ring[pos] in its current turn

	total   int
	closing bool

	depthGauges map[string]*obs.Gauge
}

type tenantQueue struct {
	items []any
}

// NewScheduler builds a scheduler with the given per-tenant queue bound
// (min 1) and WRR weights (tenants absent from weights get weight 1;
// weights below 1 are raised to 1).
func NewScheduler(perTenantCap int, weights map[string]int) *Scheduler {
	if perTenantCap < 1 {
		perTenantCap = 1
	}
	w := make(map[string]int, len(weights))
	for id, v := range weights {
		if v > 0 {
			w[id] = v
		}
	}
	s := &Scheduler{
		perTenantCap:  perTenantCap,
		weights:       w,
		defaultWeight: 1,
		queues:        map[string]*tenantQueue{},
		depthGauges:   map[string]*obs.Gauge{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *Scheduler) weightOf(id string) int {
	if w, ok := s.weights[id]; ok {
		return w
	}
	return s.defaultWeight
}

// gaugeFor lazily resolves the tenant's queue-depth gauge; callers hold
// s.mu. Cardinality is bounded by the tenants ever seen, which the serving
// layer bounds via ID validation and its LRU active set.
func (s *Scheduler) gaugeFor(id string) *obs.Gauge {
	g, ok := s.depthGauges[id]
	if !ok {
		g = obs.G("server.tenant.queue.depth." + id)
		s.depthGauges[id] = g
	}
	return g
}

// Submit enqueues item on tenant id's queue. It never blocks: a full
// tenant queue returns ErrQueueFull immediately (per-tenant backpressure),
// a closed scheduler ErrSchedulerClosed.
func (s *Scheduler) Submit(id string, item any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return ErrSchedulerClosed
	}
	q := s.queues[id]
	if q == nil {
		q = &tenantQueue{}
		s.queues[id] = q
		s.ring = append(s.ring, id)
	}
	if len(q.items) >= s.perTenantCap {
		mSchedRejected.Inc()
		return ErrQueueFull
	}
	q.items = append(q.items, item)
	s.total++
	mSchedQueued.Set(float64(s.total))
	s.gaugeFor(id).Set(float64(len(q.items)))
	s.cond.Signal()
	return nil
}

// Next blocks until an item is available and returns it with its tenant.
// After Close, remaining items drain in fair order; once empty, Next
// returns ok=false and workers should exit.
func (s *Scheduler) Next() (item any, id string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.total > 0 {
			return s.dequeueLocked()
		}
		if s.closing {
			return nil, "", false
		}
		s.cond.Wait()
	}
}

// dequeueLocked advances the weighted rotation to the next eligible tenant
// and pops one item. Callers hold s.mu and have checked total > 0.
func (s *Scheduler) dequeueLocked() (any, string, bool) {
	// total > 0 guarantees some queue is non-empty, and every non-serving
	// visit either drops an emptied ring entry or resets a slot's turn
	// counter, so the scan serves within two rotations.
	for {
		if s.pos >= len(s.ring) {
			s.pos, s.served = 0, 0
		}
		id := s.ring[s.pos]
		q := s.queues[id]
		if len(q.items) == 0 || s.served >= s.weightOf(id) {
			s.advanceLocked(len(q.items) == 0)
			continue
		}
		item := q.items[0]
		q.items[0] = nil
		q.items = q.items[1:]
		s.served++
		s.total--
		mSchedQueued.Set(float64(s.total))
		s.gaugeFor(id).Set(float64(len(q.items)))
		if len(q.items) == 0 {
			s.advanceLocked(true)
		} else if s.served >= s.weightOf(id) {
			s.advanceLocked(false)
		}
		return item, id, true
	}
}

// advanceLocked moves the rotation past the current slot, dropping the
// tenant's ring entry when its queue emptied (it re-enters at the ring's
// tail on the next Submit, keeping ring size bounded by tenants with
// queued work).
func (s *Scheduler) advanceLocked(drop bool) {
	if drop && s.pos < len(s.ring) {
		id := s.ring[s.pos]
		if q := s.queues[id]; q != nil && len(q.items) == 0 {
			delete(s.queues, id)
			s.ring = append(s.ring[:s.pos], s.ring[s.pos+1:]...)
			s.served = 0
			if s.pos >= len(s.ring) {
				s.pos = 0
			}
			return
		}
	}
	s.pos++
	s.served = 0
	if s.pos >= len(s.ring) {
		s.pos = 0
	}
}

// Depth reports tenant id's current queue depth.
func (s *Scheduler) Depth(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[id]; q != nil {
		return len(q.items)
	}
	return 0
}

// Depths snapshots every non-empty queue's depth.
func (s *Scheduler) Depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.queues))
	for id, q := range s.queues {
		if len(q.items) > 0 {
			out[id] = len(q.items)
		}
	}
	return out
}

// Close stops accepting submissions. Queued items still drain through
// Next; once empty, Next returns ok=false.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
