// Package tenant is the serving plane's multi-tenant layer: per-tenant
// state (model registry namespace, telemetry partition, learning loop)
// materialized lazily behind an LRU-bounded manager, plus the admission
// machinery — per-tenant token buckets for the synchronous plane and a
// weighted-round-robin scheduler for the asynchronous tuning plane — that
// keeps one noisy tenant from starving the rest.
//
// The paper's §4.3 vision is a cloud service where execution feedback from
// many customer databases improves per-database recommendations; this
// package is the isolation substrate that lets one daemon serve those
// databases with independent champions, drift references, and telemetry
// windows.
package tenant

import (
	"errors"
	"fmt"
)

// DefaultID is the tenant every request without an explicit tenant
// resolves to; it preserves the single-tenant behaviour (and on-disk
// layout) of a pre-multi-tenant server.
const DefaultID = "default"

// MaxIDLen bounds tenant identifiers. IDs become registry and telemetry
// directory components, so the bound also bounds path lengths.
const MaxIDLen = 64

// ErrInvalidID wraps every identifier rejection; the HTTP layer maps it
// to 400.
var ErrInvalidID = errors.New("tenant: invalid tenant id")

// ValidateID enforces the tenant identifier grammar: 1–64 characters from
// [a-z0-9_-], starting with a letter or digit. The grammar is deliberately
// hostile to path tricks — no dots (so no ".."), no separators, no
// uppercase (case-insensitive filesystems would alias two tenants onto one
// directory) — because IDs are used verbatim as directory components under
// the data root. FuzzTenantID proves no accepted ID can escape it.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty", ErrInvalidID)
	}
	if len(id) > MaxIDLen {
		return fmt.Errorf("%w: %d characters exceeds the %d limit", ErrInvalidID, len(id), MaxIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return fmt.Errorf("%w: %q (allowed: [a-z0-9] plus non-leading '-' '_', at most %d chars)", ErrInvalidID, id, MaxIDLen)
		}
	}
	return nil
}
