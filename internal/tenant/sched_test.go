package tenant

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSchedulerPerTenantBackpressure(t *testing.T) {
	s := NewScheduler(2, nil)
	for i := 0; i < 2; i++ {
		if err := s.Submit("a", i); err != nil {
			t.Fatalf("Submit a#%d: %v", i, err)
		}
	}
	if err := s.Submit("a", 99); err != ErrQueueFull {
		t.Fatalf("Submit beyond cap = %v, want ErrQueueFull", err)
	}
	// Tenant a's full queue must not block tenant b.
	if err := s.Submit("b", 0); err != nil {
		t.Fatalf("Submit b while a is full: %v", err)
	}
	if got := s.Depth("a"); got != 2 {
		t.Fatalf("Depth(a) = %d, want 2", got)
	}
	if got := s.Depths(); got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("Depths() = %v", got)
	}
}

// TestSchedulerFairness pins the WRR bound from the Scheduler doc: tenant a
// floods its queue, tenant b submits k jobs afterwards, and b's last job
// still dequeues within ceil(k/w_b)*w_a + k slots.
func TestSchedulerFairness(t *testing.T) {
	weights := map[string]int{"a": 1, "b": 2}
	s := NewScheduler(100, weights)

	const flood = 60
	for i := 0; i < flood; i++ {
		if err := s.Submit("a", fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	const k = 6
	for i := 0; i < k; i++ {
		if err := s.Submit("b", fmt.Sprintf("b%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Drain sequentially and record the dequeue position of b's last job.
	lastB := -1
	for pos := 0; pos < flood+k; pos++ {
		_, id, ok := s.Next()
		if !ok {
			t.Fatalf("Next returned !ok at position %d", pos)
		}
		if id == "b" {
			lastB = pos
		}
	}
	// Bound: ceil(k/w_b) * w_a + k = ceil(6/2)*1 + 6 = 9 jobs dequeued by
	// the time b's k-th job is served, i.e. position <= 8.
	bound := (k+1)/2*1 + k - 1
	if lastB < 0 || lastB > bound {
		t.Fatalf("b's last job dequeued at position %d, want <= %d (WRR bound)", lastB, bound)
	}
}

func TestSchedulerWeightedInterleaving(t *testing.T) {
	s := NewScheduler(100, map[string]int{"a": 2, "b": 1})
	for i := 0; i < 4; i++ {
		s.Submit("a", i)
	}
	for i := 0; i < 2; i++ {
		s.Submit("b", i)
	}
	var order []string
	for i := 0; i < 6; i++ {
		_, id, ok := s.Next()
		if !ok {
			t.Fatalf("Next !ok at %d", i)
		}
		order = append(order, id)
	}
	want := []string{"a", "a", "b", "a", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerDrainAfterClose(t *testing.T) {
	s := NewScheduler(10, nil)
	s.Submit("a", 1)
	s.Submit("b", 2)
	s.Close()
	if err := s.Submit("a", 3); err != ErrSchedulerClosed {
		t.Fatalf("Submit after Close = %v, want ErrSchedulerClosed", err)
	}
	seen := 0
	for {
		_, _, ok := s.Next()
		if !ok {
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("drained %d items after Close, want 2", seen)
	}
}

func TestSchedulerBlocksUntilSubmit(t *testing.T) {
	s := NewScheduler(10, nil)
	got := make(chan any, 1)
	go func() {
		item, _, ok := s.Next()
		if ok {
			got <- item
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the worker park in Next
	s.Submit("a", "wake")
	select {
	case item := <-got:
		if item != "wake" {
			t.Fatalf("got %v", item)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on Submit")
	}
}

// TestSchedulerConcurrent hammers Submit/Next from many goroutines under
// -race and checks conservation: every accepted item is dequeued exactly
// once.
func TestSchedulerConcurrent(t *testing.T) {
	s := NewScheduler(1000, map[string]int{"t0": 3})
	const producers, perProducer = 8, 200

	var acceptedMu sync.Mutex
	accepted := 0

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", p%4)
			for i := 0; i < perProducer; i++ {
				if err := s.Submit(id, [2]int{p, i}); err == nil {
					acceptedMu.Lock()
					accepted++
					acceptedMu.Unlock()
				}
			}
		}(p)
	}

	var consumed sync.WaitGroup
	var drainedMu sync.Mutex
	drained := 0
	for w := 0; w < 4; w++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				_, _, ok := s.Next()
				if !ok {
					return
				}
				drainedMu.Lock()
				drained++
				drainedMu.Unlock()
			}
		}()
	}

	wg.Wait()
	s.Close()
	consumed.Wait()
	if drained != accepted {
		t.Fatalf("drained %d items, accepted %d", drained, accepted)
	}
}
