package tenant

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateID(t *testing.T) {
	valid := []string{
		"default", "a", "0", "acme", "acme-prod", "acme_prod-2",
		"a1b2c3", strings.Repeat("x", MaxIDLen),
	}
	for _, id := range valid {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", id, err)
		}
	}
	invalid := []string{
		"", "..", ".", "a.b", "A", "Acme", "a/b", `a\b`, "a b", "-lead",
		"_lead", "a:b", "a..b", "../etc", "a\x00b", "héllo", "a\n",
		strings.Repeat("x", MaxIDLen+1),
	}
	for _, id := range invalid {
		err := ValidateID(id)
		if err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", id)
			continue
		}
		if !errors.Is(err, ErrInvalidID) {
			t.Errorf("ValidateID(%q) error %v does not wrap ErrInvalidID", id, err)
		}
	}
}

// FuzzTenantID proves the satellite's security property: any identifier
// ValidateID accepts, used verbatim as a directory component, resolves to
// a path strictly inside the data root — no traversal, no aliasing of the
// root itself, no separator injection.
func FuzzTenantID(f *testing.F) {
	for _, seed := range []string{
		"default", "acme", "..", "../../etc/passwd", "a/../../b", "a/b",
		`..\..`, "a\x00b", ".", "-", "_", "A", strings.Repeat("z", 65),
		"tenant-1", "tenant_2", "..hidden", "trailing.", "mixed.Case",
	} {
		f.Add(seed)
	}
	const root = "/data/tenants"
	f.Fuzz(func(t *testing.T, id string) {
		if err := ValidateID(id); err != nil {
			return // rejected IDs never reach the filesystem
		}
		if len(id) == 0 || len(id) > MaxIDLen {
			t.Fatalf("accepted ID %q violates length bounds", id)
		}
		joined := filepath.Join(root, id)
		if filepath.Clean(joined) != joined {
			t.Fatalf("accepted ID %q joins to non-clean path %q", id, joined)
		}
		if !strings.HasPrefix(joined, root+string(filepath.Separator)) {
			t.Fatalf("accepted ID %q escapes the data root: %q", id, joined)
		}
		rel, err := filepath.Rel(root, joined)
		if err != nil || rel != id {
			t.Fatalf("accepted ID %q does not round-trip as a child component (rel=%q err=%v)", id, rel, err)
		}
		if strings.ContainsAny(id, `/\.`) || strings.ContainsRune(id, 0) {
			t.Fatalf("accepted ID %q contains a separator, dot, or NUL", id)
		}
	})
}
