package tenant

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/expdata"
	"repro/internal/feat"
	"repro/internal/models"
)

// blob trains a tiny classifier so registry Add/Activate have real bytes.
func blob(t testing.TB, seed int64) []byte {
	t.Helper()
	clf := models.NewClassifier(feat.Default(), models.RF(3, seed), 0.2)
	const n, dim = 40, 6
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((i*7+j*13+int(seed))%19) / 19
		}
		X[i] = v
		y[i] = i % 3
	}
	if err := clf.TrainVectors(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := models.SaveClassifier(clf, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testManager(t *testing.T, mutate func(*Config)) *Manager {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		Dir:                  filepath.Join(dir, "tenants"),
		DefaultModelDir:      filepath.Join(dir, "models"),
		DefaultTelemetryPath: filepath.Join(dir, "telemetry.jsonl"),
		MaxActive:            4,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func TestManagerRejectsInvalidID(t *testing.T) {
	m := testManager(t, nil)
	for _, id := range []string{"", "..", "a/b", "UP"} {
		if _, err := m.Acquire(id); !errors.Is(err, ErrInvalidID) {
			t.Fatalf("Acquire(%q) = %v, want ErrInvalidID", id, err)
		}
	}
}

func TestManagerNamespacing(t *testing.T) {
	m := testManager(t, nil)

	def, err := m.Acquire(DefaultID)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(def)
	a, err := m.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(a)

	// The default tenant keeps the flat pre-multi-tenant layout; acme is
	// namespaced under the tenants root.
	if _, err := def.Reg.Add(blob(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Reg.Add(blob(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(m.cfg.DefaultModelDir, "v0001.clf")); err != nil {
		t.Fatalf("default tenant model not in flat layout: %v", err)
	}
	if _, err := os.Stat(filepath.Join(m.cfg.Dir, "acme", "models", "v0001.clf")); err != nil {
		t.Fatalf("acme model not namespaced: %v", err)
	}

	// Telemetry partitions are likewise disjoint.
	if _, err := a.Sink.Append([]expdata.PlanRecord{{Query: "q", Cost: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(m.cfg.Dir, "acme", "telemetry.jsonl")); err != nil {
		t.Fatalf("acme telemetry not namespaced: %v", err)
	}
	recs, _ := def.Sink.Snapshot()
	if len(recs) != 0 {
		t.Fatalf("default tenant sees %d of acme's records", len(recs))
	}
}

func TestManagerEvictionThenReloadPreservesCurrent(t *testing.T) {
	m := testManager(t, func(c *Config) { c.MaxActive = 1 })

	a, err := m.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Reg.AddAndActivate(blob(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Sink.Append([]expdata.PlanRecord{{Query: "q1", Cost: 3}}); err != nil {
		t.Fatal(err)
	}
	m.Release(a)

	// Materializing a second tenant overflows MaxActive=1 and evicts acme.
	b, err := m.Acquire("beta")
	if err != nil {
		t.Fatal(err)
	}
	m.Release(b)
	if got := m.ActiveCount(); got != 1 {
		t.Fatalf("ActiveCount after eviction = %d, want 1", got)
	}

	// Re-acquiring acme reloads from disk: CURRENT still points at v, and
	// the telemetry window survives with its watermark.
	a2, err := m.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(a2)
	if a2 == a {
		t.Fatal("re-acquire returned the evicted instance")
	}
	active := a2.Reg.Active()
	if active == nil || active.ID != v.ID {
		t.Fatalf("reloaded active = %+v, want version %d", active, v.ID)
	}
	recs, total := a2.Sink.Snapshot()
	if len(recs) != 1 || total != 1 {
		t.Fatalf("reloaded telemetry = %d records, total %d; want 1, 1", len(recs), total)
	}
	if recs[0].Query != "q1" {
		t.Fatalf("reloaded record = %+v", recs[0])
	}
}

func TestManagerEvictionSkipsReferencedTenants(t *testing.T) {
	m := testManager(t, func(c *Config) { c.MaxActive = 1 })

	a, err := m.Acquire("acme") // held: refs=1
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Acquire("beta")
	if err != nil {
		t.Fatal(err)
	}
	// Both are referenced, so the set transiently exceeds the bound rather
	// than tearing state out from under a handler.
	if got := m.ActiveCount(); got != 2 {
		t.Fatalf("ActiveCount with both referenced = %d, want 2", got)
	}
	m.Release(a)
	m.Release(b)

	// The next Acquire triggers overflow eviction of the LRU idle tenant
	// (acme: released first but acquired earlier — beta has the fresher
	// lastUsed, and gamma is brand new).
	g, err := m.Acquire("gamma")
	if err != nil {
		t.Fatal(err)
	}
	m.Release(g)
	ids := m.ActiveIDs()
	for _, id := range ids {
		if id == "acme" {
			t.Fatalf("LRU tenant survived eviction: %v", ids)
		}
	}
}

func TestManagerConcurrentAcquire(t *testing.T) {
	m := testManager(t, func(c *Config) { c.MaxActive = 2 })

	// Two tenants, many goroutines acquiring each concurrently with churn
	// from a third; -race and the conservation checks below are the assert.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids := []string{"acme", "beta", "churn"}
			for j := 0; j < 30; j++ {
				id := ids[(i+j)%len(ids)]
				tn, err := m.Acquire(id)
				if err != nil {
					t.Errorf("Acquire(%s): %v", id, err)
					return
				}
				if tn.ID != id {
					t.Errorf("Acquire(%s) returned tenant %s", id, tn.ID)
				}
				m.Release(tn)
			}
		}(i)
	}
	wg.Wait()
	if got := m.ActiveCount(); got > 3 {
		t.Fatalf("ActiveCount after churn = %d, want <= 3", got)
	}
}

func TestManagerCloseRejectsAcquire(t *testing.T) {
	m := NewManager(Config{DefaultModelDir: "", DefaultTelemetryPath: ""})
	tn, err := m.Acquire(DefaultID)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(tn)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(DefaultID); err == nil {
		t.Fatal("Acquire after Close succeeded")
	}
	// Close is idempotent.
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
