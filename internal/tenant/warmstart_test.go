package tenant

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expdata"
	"repro/internal/learn"
)

// telGen replays learn's synthetic telemetry shape: unique fingerprints,
// one-dimensional channel vectors whose mass tracks cost.
type telGen struct{ fp uint64 }

func (g *telGen) rec(tmpl int, mass, cost, est float64) expdata.PlanRecord {
	g.fp++
	return expdata.PlanRecord{
		DB:           "db",
		Query:        fmt.Sprintf("q%02d", tmpl),
		TemplateHash: uint64(1000 + tmpl),
		Fingerprint:  g.fp,
		Cost:         cost,
		EstTotalCost: est,
		Channels: map[string][]float64{
			"EstNodeCost":                   {mass},
			"LeafWeightEstBytesWeightedSum": {mass / 2},
		},
	}
}

var telMasses = []float64{100, 200, 400, 800, 820}

// telPhaseA: truthful costs (cost = est = mass) over templates×5 records.
func telPhaseA(g *telGen, templates int) []expdata.PlanRecord {
	var out []expdata.PlanRecord
	for t := 0; t < templates; t++ {
		for _, m := range telMasses {
			out = append(out, g.rec(t, m, m, m))
		}
	}
	return out
}

// telPhaseB: inverted costs (cost = 1000−mass) — a phase-A model is
// systematically wrong here, so a promoted challenger replaces it.
func telPhaseB(g *telGen, templates int) []expdata.PlanRecord {
	var out []expdata.PlanRecord
	for t := 0; t < templates; t++ {
		for _, m := range telMasses {
			out = append(out, g.rec(t, m, 1000-m, m))
		}
	}
	return out
}

// telPhaseShift: a 20× plan-shape shift — far from phase A in embedding
// space, so warm start must refuse the match.
func telPhaseShift(g *telGen, templates int) []expdata.PlanRecord {
	var out []expdata.PlanRecord
	for t := 0; t < templates; t++ {
		for _, m := range telMasses {
			out = append(out, g.rec(t, m*20, m*20, m*20))
		}
	}
	return out
}

// embedLearnOpts mirrors learn's test options with the embedding plane on
// and the record/schedule triggers parked, so cycles only run when a test
// calls RunCycle.
func embedLearnOpts(seed int64) learn.Options {
	return learn.Options{
		Seed:             seed,
		Trees:            15,
		Window:           20,
		EvalFrac:         0.3,
		MinRecords:       10,
		MinTrainPairs:    8,
		MinEvalPairs:     4,
		RollbackMinPairs: 8,
		RecordThreshold:  100000,
		DriftMode:        learn.DriftModeBoth,
		EmbedEpochs:      10,
	}
}

// writeTelemetryFile pre-seeds a tenant's on-disk telemetry partition, the
// state a never-materialized tenant with forwarded telemetry would have.
func writeTelemetryFile(t *testing.T, path string, recs []expdata.PlanRecord) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := range recs {
		line, err := json.Marshal(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// promoteTenant runs one learn cycle over phase-A telemetry and requires a
// promotion — leaving a champion, an encoder, and a persisted workload
// embedding in the tenant's registry.
func promoteTenant(t *testing.T, m *Manager, id string, g *telGen) {
	t.Helper()
	tn, err := m.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(tn)
	if _, err := tn.Sink.Append(telPhaseA(g, 4)); err != nil {
		t.Fatal(err)
	}
	rep, err := tn.Loop.RunCycle(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != learn.DecisionPromoted || rep.EncoderVersion == 0 {
		t.Fatalf("seeding cycle for %q = %s (%s), encoder v%d; want a promotion with an encoder",
			id, rep.Decision, rep.Reason, rep.EncoderVersion)
	}
}

// TestManagerWarmStart is the cross-tenant warm-start arc: a modelless
// tenant with thin phase-A telemetry materializes next to an established
// phase-A tenant and is seeded from it — champion, encoder, and provenance
// — then lives its own life: its first shadow evaluation scores the seeded
// champion far above the cold-start baseline (a cold tenant has no champion
// at all), and later promotions and rollbacks stay fully independent of the
// donor.
func TestManagerWarmStart(t *testing.T) {
	m := testManager(t, func(c *Config) { c.Learn = embedLearnOpts(7) })
	g := &telGen{}
	promoteTenant(t, m, "alpha", g)

	// beta has never materialized but has a thin forwarded telemetry window
	// with alpha's workload shape.
	gb := &telGen{}
	writeTelemetryFile(t, filepath.Join(m.cfg.Dir, "beta", "telemetry.jsonl"), telPhaseA(gb, 2))

	b, err := m.Acquire("beta")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(b)
	if b.Reg.Active() == nil {
		t.Fatal("warm start did not seed a champion")
	}
	if b.Reg.ActiveEncoder() == nil {
		t.Fatal("warm start did not adopt the donor's encoder")
	}
	prov, err := b.Reg.LoadProvenance()
	if err != nil || prov == nil {
		t.Fatalf("warm-start provenance missing: %+v, %v", prov, err)
	}
	if prov.SeededFrom != "alpha" || prov.SourceVersion != 1 || prov.Similarity < DefaultWarmStartFloor {
		t.Fatalf("provenance = %+v, want seeded from alpha v1 above floor %v", prov, DefaultWarmStartFloor)
	}

	// First shadow evaluation: the seeded champion scores like the model it
	// is — a phase-A expert — where a cold tenant would have no champion to
	// evaluate at all (accuracy 0 by definition).
	if _, err := b.Sink.Append(telPhaseA(gb, 4)); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Loop.RunCycle(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Champion == nil {
		t.Fatalf("first cycle after warm start had no champion to evaluate: %+v", rep)
	}
	if rep.Champion.Accuracy <= 0.5 {
		t.Fatalf("seeded champion shadow accuracy = %v, want > 0.5 (beats the cold-start baseline)",
			rep.Champion.Accuracy)
	}

	// Independence: beta promotes its own challenger when its workload
	// inverts, then rolls back on fresh evidence — entirely inside its own
	// registry.
	if _, err := b.Sink.Append(telPhaseB(gb, 4)); err != nil {
		t.Fatal(err)
	}
	rep, err = b.Loop.RunCycle(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != learn.DecisionPromoted {
		t.Fatalf("beta phase-B cycle = %s (%s), want promoted", rep.Decision, rep.Reason)
	}
	promoted := rep.ChallengerVersion
	if _, err := b.Sink.Append(telPhaseA(gb, 4)); err != nil {
		t.Fatal(err)
	}
	rep, err = b.Loop.RunCycle(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != learn.DecisionRolledBack {
		t.Fatalf("beta rollback cycle = %s (%s), want rolled_back", rep.Decision, rep.Reason)
	}
	if act := b.Reg.Active(); act == nil || act.ID == promoted {
		t.Fatalf("beta still serving the rolled-back version: %+v", act)
	}

	// The donor is untouched by everything beta did.
	a, err := m.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(a)
	if act := a.Reg.Active(); act == nil || act.ID != 1 {
		t.Fatalf("donor registry changed under warm start: %+v", act)
	}
}

// TestManagerWarmStartRespectsFloor: a workload far from every sibling in
// embedding space stays cold — no borrowed champion, no provenance.
func TestManagerWarmStartRespectsFloor(t *testing.T) {
	m := testManager(t, func(c *Config) { c.Learn = embedLearnOpts(7) })
	g := &telGen{}
	promoteTenant(t, m, "alpha", g)

	gb := &telGen{}
	writeTelemetryFile(t, filepath.Join(m.cfg.Dir, "ceta", "telemetry.jsonl"), telPhaseShift(gb, 2))
	c, err := m.Acquire("ceta")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(c)
	if c.Reg.Active() != nil {
		t.Fatal("dissimilar workload was warm-started anyway")
	}
	prov, err := c.Reg.LoadProvenance()
	if err != nil || prov != nil {
		t.Fatalf("unexpected provenance on cold tenant: %+v, %v", prov, err)
	}
}

// TestManagerWarmStartDisabled: a negative floor switches the feature off.
func TestManagerWarmStartDisabled(t *testing.T) {
	m := testManager(t, func(c *Config) {
		c.Learn = embedLearnOpts(7)
		c.WarmStartFloor = -1
	})
	g := &telGen{}
	promoteTenant(t, m, "alpha", g)
	gb := &telGen{}
	writeTelemetryFile(t, filepath.Join(m.cfg.Dir, "beta", "telemetry.jsonl"), telPhaseA(gb, 2))
	b, err := m.Acquire("beta")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(b)
	if b.Reg.Active() != nil {
		t.Fatal("warm start ran with a negative floor")
	}
}

// TestManagerEvictionSpillsLearnState: eviction spills the loop's drift
// references, counters, and promotion monitor; the reloaded tenant resumes
// mid-lifecycle and completes the rollback an uninterrupted loop would
// have performed.
func TestManagerEvictionSpillsLearnState(t *testing.T) {
	m := testManager(t, func(c *Config) {
		c.Learn = embedLearnOpts(7)
		c.MaxActive = 1
		c.WarmStartFloor = -1 // isolate the spill path
	})
	ctx := context.Background()
	g := &telGen{}

	a, err := m.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Sink.Append(telPhaseA(g, 4)); err != nil {
		t.Fatal(err)
	}
	if rep, err := a.Loop.RunCycle(ctx, "test"); err != nil || rep.Decision != learn.DecisionPromoted {
		t.Fatalf("cycle 1: %v %+v", err, rep)
	}
	if _, err := a.Sink.Append(telPhaseB(g, 4)); err != nil {
		t.Fatal(err)
	}
	if rep, err := a.Loop.RunCycle(ctx, "test"); err != nil || rep.Decision != learn.DecisionPromoted {
		t.Fatalf("cycle 2: %v %+v", err, rep)
	}
	before := a.Loop.Status()
	if before.Monitoring == nil || before.Monitoring.PromotedVersion != 2 {
		t.Fatalf("cycle 2 must leave v2 monitored, got %+v", before.Monitoring)
	}
	m.Release(a)

	// Materializing a second tenant evicts alpha; finalize spills its state.
	b, err := m.Acquire("beta")
	if err != nil {
		t.Fatal(err)
	}
	m.Release(b)

	// Re-acquire waits out the in-flight finalization, then restores.
	a2, err := m.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(a2)
	if _, err := os.Stat(filepath.Join(m.cfg.Dir, "alpha", "learn_state.json")); err != nil {
		t.Fatalf("spill file missing after eviction: %v", err)
	}
	after := a2.Loop.Status()
	if after.Cycles != before.Cycles || after.Promotions != before.Promotions {
		t.Fatalf("counters lost in eviction: before %+v after %+v", before, after)
	}
	if after.Monitoring == nil || *after.Monitoring != *before.Monitoring {
		t.Fatalf("monitoring window lost in eviction: before %+v after %+v",
			before.Monitoring, after.Monitoring)
	}

	// The restored loop completes the arc: phase-A telemetry shows v2 was a
	// mistake → rollback to v1.
	if _, err := a2.Sink.Append(telPhaseA(g, 4)); err != nil {
		t.Fatal(err)
	}
	rep, err := a2.Loop.RunCycle(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != learn.DecisionRolledBack {
		t.Fatalf("post-restore cycle = %s (%s), want rolled_back", rep.Decision, rep.Reason)
	}
	if act := a2.Reg.Active(); act == nil || act.ID != 1 {
		t.Fatalf("active after restored rollback = %+v, want v1", act)
	}
}
