package tenant

import (
	"testing"
	"time"
)

func TestBucketNilAdmitsEverything(t *testing.T) {
	var b *Bucket // NewBucket(0, ...) returns nil: rate limiting disabled
	if b = NewBucket(0, 10); b != nil {
		t.Fatalf("NewBucket(0) = %v, want nil", b)
	}
	now := time.Now()
	for i := 0; i < 1000; i++ {
		if ok, wait := b.Allow(now); !ok || wait != 0 {
			t.Fatalf("nil bucket rejected request %d (wait %v)", i, wait)
		}
	}
}

func TestBucketBurstThenRefill(t *testing.T) {
	start := time.Unix(1000, 0)
	b := NewBucket(2, 4) // 2 tokens/s, burst 4

	for i := 0; i < 4; i++ {
		if ok, _ := b.Allow(start); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := b.Allow(start)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// Empty bucket at 2 tokens/s: the next token is 500ms away.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}

	// After the advertised wait, exactly one more request fits.
	later := start.Add(retry)
	if ok, _ := b.Allow(later); !ok {
		t.Fatal("request after advertised Retry-After rejected")
	}
	if ok, _ := b.Allow(later); ok {
		t.Fatal("second request after partial refill admitted")
	}

	// A long idle period refills to burst, never beyond.
	idle := later.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.Allow(idle); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("after long idle admitted %d, want burst=4", admitted)
	}
}

func TestBucketDefaultBurst(t *testing.T) {
	b := NewBucket(3, 0) // burst defaults to max(1, 2*rate) = 6
	now := time.Unix(2000, 0)
	admitted := 0
	for i := 0; i < 20; i++ {
		if ok, _ := b.Allow(now); ok {
			admitted++
		}
	}
	if admitted != 6 {
		t.Fatalf("default burst admitted %d, want 6", admitted)
	}
}
