package tenant

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sync"

	"repro/internal/embed"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/server/registry"
	"repro/internal/telemetry"
)

// Manager metric handles (see DESIGN.md §14).
var (
	mActive     = obs.G("server.tenant.active")
	mEvictions  = obs.C("server.tenant.evictions")
	mLoads      = obs.C("server.tenant.loads")
	mWarmStarts = obs.C("server.tenant.warm_starts")
	mSpills     = obs.C("server.tenant.state_spills")
)

// Config wires a Manager to the per-tenant resources it materializes.
type Config struct {
	// Dir is the data root for non-default tenants: tenant t gets a model
	// registry at <Dir>/<t>/models and a telemetry partition at
	// <Dir>/<t>/telemetry.jsonl. Empty keeps non-default tenants entirely
	// in memory (ephemeral registries and bounded telemetry buffers).
	Dir string
	// DefaultModelDir / DefaultTelemetryPath are the default tenant's
	// locations — the exact paths a pre-multi-tenant server used, so
	// existing deployments keep their registry and telemetry in place.
	DefaultModelDir      string
	DefaultTelemetryPath string

	// MaxActive bounds the materialized tenant set (default 8, min 1). The
	// least-recently-used idle tenant is evicted — learning loop stopped,
	// telemetry flushed and closed — and transparently reloaded on its
	// next request.
	MaxActive int

	// RegistryKeep bounds each tenant's registry after promotions
	// (0 = keep everything).
	RegistryKeep int
	// TelemetrySegmentBytes / TelemetrySegments bound each tenant's
	// telemetry partition (0 = package defaults).
	TelemetrySegmentBytes int64
	TelemetrySegments     int
	// IngestRate engages per-tenant telemetry sampling above this many
	// records/second (0 = never sample); see telemetry.Opts.SampleRate.
	IngestRate float64

	// Learn configures every tenant's learning loop. Loops are fully
	// independent — own drift reference, promotion monitor, and cycle
	// serialization — but share one recipe, so a tenant's model depends
	// only on its own telemetry (the isolation tests pin this).
	Learn learn.Options

	// Rate / Burst configure each tenant's synchronous-plane token bucket
	// (requests/second; Rate 0 disables admission control).
	Rate  float64
	Burst int

	// WarmStartFloor is the minimum cosine similarity between a modelless
	// tenant's workload embedding and a sibling's persisted one for the
	// sibling's champion to seed it (0 = default 0.80; negative disables
	// cross-tenant warm start).
	WarmStartFloor float64
}

func (c Config) withDefaults() Config {
	if c.MaxActive <= 0 {
		c.MaxActive = 8
	}
	if c.WarmStartFloor == 0 {
		c.WarmStartFloor = DefaultWarmStartFloor
	}
	return c
}

// DefaultWarmStartFloor is the similarity bar a cross-tenant match must
// clear: high enough that only near-identical workload shapes seed a new
// tenant, so a bad borrow is rarer than a cold start.
const DefaultWarmStartFloor = 0.80

// Tenant is one materialized tenant: its registry namespace, telemetry
// partition, learning loop, and admission bucket. Fields are read-only
// after materialization; the manager owns lifecycle.
type Tenant struct {
	ID   string
	Reg  *registry.Registry
	Sink *telemetry.Sink
	Loop *learn.Loop

	bucket *Bucket
	// statePath is where the learning loop's in-memory state (drift
	// references, promotion monitor, counters) spills at finalization and
	// restores from at materialization ("" = memory-only tenant, no spill).
	statePath string
}

// Admit spends one synchronous-plane token. ok=false carries the
// Retry-After to surface with the 429.
func (t *Tenant) Admit(now time.Time) (ok bool, retryAfter time.Duration) {
	return t.bucket.Allow(now)
}

// entry tracks a materialized tenant's lifecycle inside the manager.
type entry struct {
	t        *Tenant
	refs     int
	lastUsed uint64
}

// Manager lazily materializes tenants behind an LRU-bounded active set.
// Acquire/Release bracket every request touching tenant state; eviction
// only claims tenants with zero in-flight references, so handlers never
// observe a closing sink or stopped loop.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	active map[string]*entry
	// closing tracks evicted tenants whose finalization (loop stop, sink
	// flush/close) is still in flight; re-acquiring one waits for its
	// channel so two sinks never hold the same telemetry file.
	closing map[string]chan struct{}
	seq     uint64
	closed  bool
}

// NewManager builds a manager; tenants materialize on first Acquire.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:     cfg.withDefaults(),
		active:  map[string]*entry{},
		closing: map[string]chan struct{}{},
	}
}

// paths resolves tenant id's on-disk locations ("" = memory-only). The
// learn-state spill lives next to the tenant's other artifacts: inside the
// model dir for the default tenant (whose layout predates the tenants
// root), beside models/ and telemetry.jsonl for everyone else.
func (m *Manager) paths(id string) (modelDir, telPath, statePath string, err error) {
	if id == DefaultID {
		if m.cfg.DefaultModelDir != "" {
			statePath = filepath.Join(m.cfg.DefaultModelDir, "learn_state.json")
		}
		return m.cfg.DefaultModelDir, m.cfg.DefaultTelemetryPath, statePath, nil
	}
	if m.cfg.Dir == "" {
		return "", "", "", nil
	}
	base := filepath.Join(m.cfg.Dir, id)
	if err := os.MkdirAll(base, 0o755); err != nil {
		return "", "", "", fmt.Errorf("tenant: creating %s: %w", base, err)
	}
	return filepath.Join(base, "models"), filepath.Join(base, "telemetry.jsonl"),
		filepath.Join(base, "learn_state.json"), nil
}

// Acquire returns tenant id's materialized state, loading (or reloading,
// after an eviction) it on demand, and takes a reference that blocks
// eviction until the matching Release. Invalid IDs fail with ErrInvalidID.
func (m *Manager) Acquire(id string) (*Tenant, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return nil, fmt.Errorf("tenant: manager closed")
		}
		if e, ok := m.active[id]; ok {
			m.seq++
			e.refs++
			e.lastUsed = m.seq
			return e.t, nil
		}
		ch, pending := m.closing[id]
		if !pending {
			break
		}
		m.mu.Unlock()
		<-ch
		m.mu.Lock()
	}
	m.seq++
	t, err := m.materializeLocked(id)
	if err != nil {
		return nil, err
	}
	m.active[id] = &entry{t: t, refs: 1, lastUsed: m.seq}
	mActive.Set(float64(len(m.active)))
	mLoads.Inc()
	m.evictOverflowLocked()
	return t, nil
}

// materializeLocked opens tenant id's registry and telemetry partition and
// starts its learning loop. A persistent tenant that was evicted earlier
// resumes from its CURRENT pointer, on-disk telemetry window, and spilled
// learn state (drift references, promotion monitor, counters); a modelless
// tenant with telemetry may be warm-started from a sibling's champion
// (see warmStart).
func (m *Manager) materializeLocked(id string) (*Tenant, error) {
	modelDir, telPath, statePath, err := m.paths(id)
	if err != nil {
		return nil, err
	}
	reg, err := registry.Open(modelDir)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", id, err)
	}
	sink, err := telemetry.Open(telemetry.Opts{
		Path:         telPath,
		SegmentBytes: m.cfg.TelemetrySegmentBytes,
		MaxSegments:  m.cfg.TelemetrySegments,
		SampleRate:   m.cfg.IngestRate,
		SampleSeed:   m.cfg.Learn.Seed,
		Label:        id,
	})
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", id, err)
	}
	t := &Tenant{
		ID:        id,
		Reg:       reg,
		Sink:      sink,
		Loop:      learn.NewLoop(reg, sink.Snapshot, m.cfg.RegistryKeep, m.cfg.Learn),
		bucket:    NewBucket(m.cfg.Rate, m.cfg.Burst),
		statePath: statePath,
	}
	// A corrupt spill file starts the loop clean instead of refusing the
	// tenant — the spill is an optimization, never a gate.
	_ = t.Loop.RestoreStateFile(statePath)
	m.warmStart(t)
	t.Loop.Start()
	return t, nil
}

// warmStart seeds a modelless tenant from its most similar sibling. The
// tenant's own telemetry is embedded under each sibling's active plan
// encoder and compared (cosine) against that sibling's persisted workload
// embedding; the best match above WarmStartFloor donates its champion
// classifier and encoder, with full provenance recorded in the registry.
// Every failure path simply leaves the tenant cold — warm start is an
// optimization, never a gate.
func (m *Manager) warmStart(t *Tenant) {
	if m.cfg.WarmStartFloor <= 0 || m.cfg.Dir == "" || t.Reg.Active() != nil {
		return
	}
	recs, _ := t.Sink.Snapshot()
	if len(recs) == 0 {
		return // nothing to match a sibling's workload against
	}
	type candidate struct {
		id        string
		modelDir  string
		sim       float64
		modelBlob []byte
		modelVer  int
		encBlob   []byte
		encVer    int
	}
	dirs := []candidate{}
	if entries, err := os.ReadDir(m.cfg.Dir); err == nil {
		for _, e := range entries {
			if e.IsDir() && e.Name() != t.ID {
				dirs = append(dirs, candidate{id: e.Name(), modelDir: filepath.Join(m.cfg.Dir, e.Name(), "models")})
			}
		}
	}
	if t.ID != DefaultID && m.cfg.DefaultModelDir != "" {
		dirs = append(dirs, candidate{id: DefaultID, modelDir: m.cfg.DefaultModelDir})
	}
	var best *candidate
	for i := range dirs {
		c := &dirs[i]
		// A corrupt or incomplete sibling is skipped, not fatal: every peek
		// validates before the blob is trusted.
		we, err := registry.PeekWorkloadEmbedding(c.modelDir)
		if err != nil {
			continue
		}
		enc, encVer, encBlob, err := registry.PeekActiveEncoder(c.modelDir)
		if err != nil {
			continue
		}
		modelBlob, modelVer, err := registry.PeekActiveModel(c.modelDir)
		if err != nil {
			continue
		}
		ours := enc.Workload(embed.RecordSamples(recs, enc.Channels()))
		if ours == nil {
			continue
		}
		c.sim = embed.Cosine(ours.Vector, we.Vector)
		c.modelBlob, c.modelVer = modelBlob, modelVer
		c.encBlob, c.encVer = encBlob, encVer
		// Strictly-greater keeps the lexicographically first sibling on
		// ties (os.ReadDir sorts), so the scan is deterministic.
		if c.sim >= m.cfg.WarmStartFloor && (best == nil || c.sim > best.sim) {
			best = c
		}
	}
	if best == nil {
		return
	}
	if _, err := t.Reg.AddAndActivate(best.modelBlob); err != nil {
		return
	}
	// The encoder ride-along gives the seeded tenant an embedding-drift
	// reference path from cycle one; losing it degrades gracefully.
	if _, err := t.Reg.AddAndActivateEncoder(best.encBlob); err == nil {
		_ = t.Reg.SaveProvenance(&registry.Provenance{
			SeededFrom: best.id, SourceVersion: best.modelVer,
			SourceEncoder: best.encVer, Similarity: best.sim, At: time.Now().UTC(),
		})
	} else {
		_ = t.Reg.SaveProvenance(&registry.Provenance{
			SeededFrom: best.id, SourceVersion: best.modelVer,
			Similarity: best.sim, At: time.Now().UTC(),
		})
	}
	mWarmStarts.Inc()
}

// Release drops a reference taken by Acquire.
func (m *Manager) Release(t *Tenant) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.active[t.ID]; ok && e.t == t && e.refs > 0 {
		e.refs--
	}
}

// evictOverflowLocked evicts least-recently-used idle tenants until the
// active set fits MaxActive. Tenants with in-flight references are never
// evicted (the set may transiently exceed the bound under concurrent
// load). Finalization — stopping the loop, flushing and closing the sink —
// runs without the manager lock so slow teardown cannot stall unrelated
// tenants.
func (m *Manager) evictOverflowLocked() {
	var victims []*Tenant
	for len(m.active) > m.cfg.MaxActive {
		var victim string
		var oldest uint64
		for id, e := range m.active {
			if e.refs > 0 {
				continue
			}
			if victim == "" || e.lastUsed < oldest {
				victim, oldest = id, e.lastUsed
			}
		}
		if victim == "" {
			break // everyone is busy; retry on the next Acquire
		}
		victims = append(victims, m.active[victim].t)
		delete(m.active, victim)
		m.closing[victim] = make(chan struct{})
	}
	if len(victims) == 0 {
		return
	}
	mActive.Set(float64(len(m.active)))
	mEvictions.Add(int64(len(victims)))
	go func() {
		for _, t := range victims {
			finalize(t)
			m.mu.Lock()
			ch := m.closing[t.ID]
			delete(m.closing, t.ID)
			m.mu.Unlock()
			close(ch)
		}
	}()
}

// finalize cleanly shuts one tenant down: the loop stops first (it reads
// the sink), spills its in-memory state (drift references, monitor,
// counters) so a reload resumes mid-lifecycle, then the sink flushes and
// closes. Registry state is already durable (every Activate persisted
// CURRENT).
func finalize(t *Tenant) {
	t.Loop.Stop()
	if t.statePath != "" {
		if err := t.Loop.SaveStateFile(t.statePath); err == nil {
			mSpills.Inc()
		}
	}
	_ = t.Sink.Flush()
	_ = t.Sink.Close()
}

// ActiveCount reports the materialized tenant count.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// ActiveIDs snapshots the materialized tenant IDs (unordered).
func (m *Manager) ActiveIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.active))
	for id := range m.active {
		out = append(out, id)
	}
	return out
}

// Close finalizes every tenant (loops stopped, sinks flushed and closed)
// and rejects further Acquires. ctx bounds the wait for in-flight
// references to drain; tenants still referenced when it expires are
// finalized anyway (their requests will observe closed-sink errors).
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	// Wait for in-flight references to drain so finalize never races a
	// handler mid-request.
	for {
		m.mu.Lock()
		busy := 0
		for _, e := range m.active {
			busy += e.refs
		}
		m.mu.Unlock()
		if busy == 0 || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Millisecond):
		}
	}
	m.mu.Lock()
	ts := make([]*Tenant, 0, len(m.active))
	for _, e := range m.active {
		ts = append(ts, e.t)
	}
	m.active = map[string]*entry{}
	pending := make([]chan struct{}, 0, len(m.closing))
	for _, ch := range m.closing {
		pending = append(pending, ch)
	}
	mActive.Set(0)
	m.mu.Unlock()
	for _, t := range ts {
		finalize(t)
	}
	for _, ch := range pending {
		<-ch // evictions already in flight finish their teardown
	}
	return ctx.Err()
}
