// Package telemetry is the serving plane's durable ingest partition: one
// Sink per tenant accumulates execution telemetry (§2.3's feedback stream)
// as JSON lines, rotated by size across a bounded number of segments, with
// optional pressure-driven sampling so a firehose cannot exhaust disk or
// memory. The learning loop reads a Sink through Snapshot, whose monotonic
// total doubles as a watermark: the window's last record has ordinal
// total−1, so a caller holding a total can slice exactly the records
// ingested after it — an invariant that survives rotation, restart, and
// sampling.
//
// Sampling keeps the loop unbiased: when the per-sink admission budget is
// exhausted, each record is kept with probability p and the survivors'
// Weight fields are scaled by 1/p, so weighted aggregates over the stored
// window estimate the unsampled stream. Kept/dropped counts and the
// current keep probability are exported as metrics.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/expdata"
	"repro/internal/obs"
	"repro/internal/util"
)

// Sink-wide metric handles (names preserved from the pre-partitioned
// server sink; see DESIGN.md §8/§14).
var (
	mRecords   = obs.C("server.telemetry.records")
	mRotations = obs.C("server.telemetry.rotations")
	mSkipped   = obs.C("server.telemetry.snapshot_skipped")
	mSegments  = obs.G("server.telemetry.segments")
	mBytes     = obs.G("server.telemetry.segment_bytes")
	mSampled   = obs.C("server.telemetry.sampled_dropped")
)

// Bounds and defaults. Segments rotate by size so a JSONL partition can
// never grow without limit: the current segment lives at <path>, rotated
// ones at <path>.1 (newest) .. <path>.N-1 (oldest), and the oldest segment
// is deleted on rotation. The retained window — what Snapshot hands the
// learning loop — is therefore at most MaxSegments × SegmentBytes.
const (
	defaultSegmentBytes = 8 << 20
	defaultMaxSegments  = 4
	// memRecordCap bounds the in-memory buffer of a path-less sink (tests,
	// ephemeral servers): the oldest records are dropped past the cap, like
	// a rotated-away segment.
	memRecordCap = 100_000
	// minKeepProb floors the sampling probability so a tenant under
	// sustained overload still feeds its learning loop a trickle instead of
	// starving it entirely.
	minKeepProb = 1.0 / 64
)

// Opts configure a Sink. The zero value is a memory-only sink with default
// bounds and no sampling.
type Opts struct {
	// Path is the current-segment location; empty keeps records in a
	// bounded in-memory buffer.
	Path string
	// SegmentBytes rotates the current segment at this size (0 = 8 MiB).
	SegmentBytes int64
	// MaxSegments bounds retained segments after rotation (0 = 4).
	MaxSegments int

	// SampleRate is the admitted ingest rate in records/second before
	// probabilistic sampling engages (0 = never sample). Bursts up to
	// SampleBurst records pass unsampled.
	SampleRate float64
	// SampleBurst is the token-bucket burst in records (0 = 4×SampleRate,
	// min 64).
	SampleBurst int
	// SampleSeed seeds the sampling RNG (deterministic keep/drop decisions
	// under a fixed seed and arrival sequence).
	SampleSeed int64

	// Label names the partition (the tenant ID) for per-partition gauges;
	// empty emits no per-partition metrics.
	Label string

	// now overrides the clock (tests); nil uses time.Now.
	now func() time.Time
}

// Sink accumulates execution telemetry for one partition. All methods are
// safe for concurrent use; lines are written whole under the sink mutex so
// concurrent appends never tear or interleave records.
type Sink struct {
	mu           sync.Mutex
	path         string
	segmentBytes int64
	maxSegments  int

	f        *os.File
	bw       *bufio.Writer
	curBytes int64

	records []expdata.PlanRecord // memory-only mode
	dropped int64                // memory-mode records discarded past the cap
	count   int64                // records stored, or found on disk at open
	closed  bool

	// Sampling state (sampler nil when Opts.SampleRate == 0).
	sampler *sampler
	offered int64 // records offered to Append, including sampled-away ones

	mSampleRate *obs.Gauge // per-partition keep probability (1 = no sampling)
}

// Open opens (appending to) the sink described by o. Pre-existing segments
// are counted so Total stays aligned with what Snapshot returns across
// restarts.
func Open(o Opts) (*Sink, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = defaultMaxSegments
	}
	s := &Sink{path: o.Path, segmentBytes: o.SegmentBytes, maxSegments: o.MaxSegments}
	if o.SampleRate > 0 {
		burst := o.SampleBurst
		if burst <= 0 {
			burst = int(4 * o.SampleRate)
			if burst < 64 {
				burst = 64
			}
		}
		now := o.now
		if now == nil {
			now = time.Now
		}
		s.sampler = newSampler(o.SampleRate, float64(burst), o.SampleSeed, now)
	}
	if o.Label != "" {
		s.mSampleRate = obs.G("server.tenant.ingest.sample_rate." + o.Label)
		s.mSampleRate.Set(1)
	}
	if s.path == "" {
		return s, nil
	}
	for _, seg := range s.segmentPaths() {
		recs, _ := readSegment(seg)
		s.count += int64(len(recs))
	}
	s.offered = s.count
	if err := s.openCurrent(); err != nil {
		return nil, err
	}
	return s, nil
}

// segmentPaths lists every possible segment location, oldest first, ending
// with the current segment.
func (s *Sink) segmentPaths() []string {
	out := make([]string, 0, s.maxSegments)
	for i := s.maxSegments - 1; i >= 1; i-- {
		out = append(out, fmt.Sprintf("%s.%d", s.path, i))
	}
	return append(out, s.path)
}

// openCurrent opens the live segment for appending; callers hold s.mu (or
// run during single-threaded construction).
func (s *Sink) openCurrent() error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: opening sink %s: %w", s.path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("telemetry: stat sink %s: %w", s.path, err)
	}
	// A crash mid-write can leave a torn line without a trailing newline;
	// appending directly after it would corrupt the next record too.
	// Terminate the torn line so only the torn record is lost.
	if size := info.Size(); size > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], size-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return fmt.Errorf("telemetry: terminating torn line in %s: %w", s.path, err)
			}
		}
	}
	s.f = f
	s.bw = bufio.NewWriter(f)
	s.curBytes = info.Size()
	mBytes.Set(float64(s.curBytes))
	return nil
}

// rotate shifts <path>.i → <path>.i+1 (dropping the oldest), moves the
// current segment to <path>.1, and opens a fresh current segment. Called
// with s.mu held and the writer flushed.
func (s *Sink) rotate() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("telemetry: closing segment: %w", err)
	}
	for i := s.maxSegments - 1; i >= 2; i-- {
		from := fmt.Sprintf("%s.%d", s.path, i-1)
		to := fmt.Sprintf("%s.%d", s.path, i)
		if _, err := os.Stat(from); err == nil {
			if err := os.Rename(from, to); err != nil {
				return fmt.Errorf("telemetry: rotating segment %s: %w", from, err)
			}
		}
	}
	if s.maxSegments > 1 {
		if err := os.Rename(s.path, s.path+".1"); err != nil {
			return fmt.Errorf("telemetry: rotating segment %s: %w", s.path, err)
		}
	} else if err := os.Remove(s.path); err != nil {
		return fmt.Errorf("telemetry: truncating sink %s: %w", s.path, err)
	}
	mRotations.Inc()
	if err := s.openCurrent(); err != nil {
		return err
	}
	n := 0
	for _, seg := range s.segmentPaths() {
		if _, err := os.Stat(seg); err == nil {
			n++
		}
	}
	mSegments.Set(float64(n))
	return nil
}

// Append admits records into the sink, applying pressure sampling when
// configured and rotating the on-disk segment when it crosses the size
// threshold. Kept records have their Weight scaled by the inverse keep
// probability; the return reports how many records were stored.
func (s *Sink) Append(recs []expdata.PlanRecord) (stored int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("telemetry: sink %q is closed", s.path)
	}
	s.offered += int64(len(recs))
	if s.sampler != nil {
		kept, p := s.sampler.thin(recs)
		if s.mSampleRate != nil {
			s.mSampleRate.Set(p)
		}
		mSampled.Add(int64(len(recs) - len(kept)))
		recs = kept
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if s.bw != nil {
		for i := range recs {
			line, err := json.Marshal(&recs[i])
			if err != nil {
				return 0, fmt.Errorf("telemetry: appending: %w", err)
			}
			line = append(line, '\n')
			if _, err := s.bw.Write(line); err != nil {
				return 0, fmt.Errorf("telemetry: appending: %w", err)
			}
			s.curBytes += int64(len(line))
			if s.curBytes >= s.segmentBytes {
				if err := s.bw.Flush(); err != nil {
					return 0, fmt.Errorf("telemetry: flushing: %w", err)
				}
				if err := s.rotate(); err != nil {
					return 0, err
				}
			}
		}
		mBytes.Set(float64(s.curBytes))
	} else {
		s.records = append(s.records, recs...)
		if over := len(s.records) - memRecordCap; over > 0 {
			s.records = append(s.records[:0:0], s.records[over:]...)
			s.dropped += int64(over)
		}
	}
	s.count += int64(len(recs))
	mRecords.Add(int64(len(recs)))
	return len(recs), nil
}

// Snapshot returns the retained telemetry window (oldest first) and the
// monotonic total of records ever stored. The window's last record has
// ordinal total-1, so a caller holding a total watermark can slice exactly
// the records stored after it. Disk-backed sinks read every live segment;
// unparseable lines (a torn write from a crash) are skipped and counted.
func (s *Sink) Snapshot() ([]expdata.PlanRecord, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return append([]expdata.PlanRecord(nil), s.records...), s.count
	}
	if err := s.bw.Flush(); err != nil {
		mSkipped.Inc()
		return nil, s.count
	}
	var out []expdata.PlanRecord
	for _, seg := range s.segmentPaths() {
		recs, skipped := readSegment(seg)
		mSkipped.Add(int64(skipped))
		out = append(out, recs...)
	}
	return out, s.count
}

// readSegment decodes one JSONL segment line by line, skipping (and
// counting) lines that do not parse. A missing segment is empty.
func readSegment(path string) (recs []expdata.PlanRecord, skipped int) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec expdata.PlanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if sc.Err() != nil {
		skipped++
	}
	return recs, skipped
}

// Total returns the monotonic number of records stored (including records
// found on disk when the sink opened).
func (s *Sink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Offered returns the number of records offered to Append, including ones
// a pressure sampler dropped — the unthinned traffic volume.
func (s *Sink) Offered() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offered
}

// SampleRate returns the most recent keep probability (1 when sampling is
// off or the sink is under its admission budget).
func (s *Sink) SampleRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sampler == nil {
		return 1
	}
	return s.sampler.lastP
}

// Flush forces buffered records to disk (no-op for memory sinks).
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes and closes the sink. Further Appends fail.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.bw == nil {
		s.records = nil
		return nil
	}
	bw, f := s.bw, s.f
	s.bw, s.f = nil, nil
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sampler is a token bucket over record counts driving probabilistic
// thinning: while tokens last, everything is admitted; past them, each
// record survives with probability tokens/offered (floored at minKeepProb)
// and survivors' weights are scaled by the inverse so weighted aggregates
// stay unbiased. Callers hold the sink mutex.
type sampler struct {
	rate   float64 // tokens (records) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
	rng    *util.RNG
	lastP  float64
}

func newSampler(rate, burst float64, seed int64, now func() time.Time) *sampler {
	return &sampler{rate: rate, burst: burst, tokens: burst, now: now,
		rng: util.NewRNG(seed).Split("telemetry-sampler"), lastP: 1}
}

// thin refills the bucket and returns the surviving records plus the keep
// probability applied to this batch.
func (sp *sampler) thin(recs []expdata.PlanRecord) ([]expdata.PlanRecord, float64) {
	t := sp.now()
	if !sp.last.IsZero() {
		sp.tokens += t.Sub(sp.last).Seconds() * sp.rate
		if sp.tokens > sp.burst {
			sp.tokens = sp.burst
		}
	}
	sp.last = t
	n := float64(len(recs))
	if n == 0 {
		sp.lastP = 1
		return recs, 1
	}
	if sp.tokens >= n {
		sp.tokens -= n
		sp.lastP = 1
		return recs, 1
	}
	p := sp.tokens / n
	if p < minKeepProb {
		p = minKeepProb
	}
	kept := recs[:0:0]
	for i := range recs {
		if sp.rng.Float64() < p {
			rec := recs[i]
			rec.Weight = rec.EffectiveWeight() / p
			kept = append(kept, rec)
		}
	}
	sp.tokens -= float64(len(kept))
	if sp.tokens < 0 {
		sp.tokens = 0
	}
	sp.lastP = p
	return kept, p
}
