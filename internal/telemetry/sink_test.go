package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/expdata"
)

// telRec builds a small telemetry record whose Query encodes n, so tests
// can verify ordering across segments.
func telRec(n int) expdata.PlanRecord {
	return expdata.PlanRecord{
		DB:           "db",
		Query:        fmt.Sprintf("q%04d", n),
		Fingerprint:  uint64(n + 1),
		Cost:         float64(n),
		EstTotalCost: float64(n),
		Channels:     map[string][]float64{"EstNodeCost": {float64(n)}},
	}
}

func appendOne(t *testing.T, s *Sink, rec expdata.PlanRecord) {
	t.Helper()
	if _, err := s.Append([]expdata.PlanRecord{rec}); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryRotationAndCrossSegmentSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	// ~150 bytes per record: a 1KiB segment holds a handful, so 40 records
	// force several rotations.
	sink, err := Open(Opts{Path: path, SegmentBytes: 1024, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		appendOne(t, sink, telRec(i))
	}
	if sink.Total() != n {
		t.Fatalf("total = %d, want %d", sink.Total(), n)
	}
	recs, total := sink.Snapshot()
	if total != n {
		t.Fatalf("snapshot total = %d, want %d", total, n)
	}
	// Rotation drops the oldest segments, so the window is a strict suffix
	// of the ingest stream: the last record must be the newest, order must
	// be preserved, and the watermark arithmetic (last record has ordinal
	// total−1) must hold.
	if len(recs) == 0 || len(recs) == n {
		t.Fatalf("window = %d records, want a proper suffix of %d (rotation must have dropped some)", len(recs), n)
	}
	for i, r := range recs {
		want := fmt.Sprintf("q%04d", n-len(recs)+i)
		if r.Query != want {
			t.Fatalf("window[%d] = %s, want %s (suffix alignment broken)", i, r.Query, want)
		}
	}
	// The rotated segment files exist and respect the bound.
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated segment missing: %v", err)
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("segment beyond the retention bound exists (err=%v)", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryRestartKeepsWatermarkAlignment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	sink, err := Open(Opts{Path: path, SegmentBytes: 1024, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		appendOne(t, sink, telRec(i))
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: records found on disk count into the total, so a watermark
	// taken before the restart still slices correctly after it.
	sink2, err := Open(Opts{Path: path, SegmentBytes: 1024, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	if sink2.Total() != 10 {
		t.Fatalf("total after reopen = %d, want 10", sink2.Total())
	}
	appendOne(t, sink2, telRec(10))
	recs, total := sink2.Snapshot()
	if total != 11 {
		t.Fatalf("total = %d, want 11", total)
	}
	if last := recs[len(recs)-1].Query; last != "q0010" {
		t.Fatalf("last record = %s, want q0010", last)
	}
}

func TestTelemetrySnapshotSkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	sink, err := Open(Opts{Path: path, SegmentBytes: 1 << 20, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	appendOne(t, sink, telRec(0))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a torn, unparseable trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"db":"db","query":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sink2, err := Open(Opts{Path: path, SegmentBytes: 1 << 20, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	recs, _ := sink2.Snapshot()
	if len(recs) != 1 || recs[0].Query != "q0000" {
		t.Fatalf("snapshot = %d records (%v), want just the intact one", len(recs), recs)
	}
	// The torn line must have been terminated on reopen: a record appended
	// after the crash stays parseable instead of merging into the torn one.
	appendOne(t, sink2, telRec(1))
	recs, _ = sink2.Snapshot()
	if len(recs) != 2 || recs[1].Query != "q0001" {
		t.Fatalf("post-crash append = %d records (%v), want the new record intact", len(recs), recs)
	}
}

func TestTelemetryMemoryMode(t *testing.T) {
	sink, err := Open(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	for i := 0; i < 5; i++ {
		appendOne(t, sink, telRec(i))
	}
	recs, total := sink.Snapshot()
	if len(recs) != 5 || total != 5 {
		t.Fatalf("memory snapshot = (%d records, total %d), want (5, 5)", len(recs), total)
	}
	// Snapshot is a copy: mutating it must not corrupt the sink.
	recs[0].Query = "mutated"
	again, _ := sink.Snapshot()
	if again[0].Query != "q0000" {
		t.Fatal("snapshot aliases the sink's backing slice")
	}
}

// TestTelemetrySamplingUnderPressure drives a sink past its admission
// budget with a frozen clock and checks the sampling contract: the burst
// passes whole, overflow is thinned with a recorded keep probability, and
// survivors carry inverse-probability weights so the weighted total stays
// an unbiased estimate of the offered stream.
func TestTelemetrySamplingUnderPressure(t *testing.T) {
	now := time.Unix(1000, 0)
	sink, err := Open(Opts{
		SampleRate: 10, SampleBurst: 100, SampleSeed: 7,
		now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// First batch fits the burst: everything admitted, rate 1.
	batch := make([]expdata.PlanRecord, 100)
	for i := range batch {
		batch[i] = telRec(i)
	}
	stored, err := sink.Append(batch)
	if err != nil || stored != 100 {
		t.Fatalf("burst append stored %d (err %v), want 100", stored, err)
	}
	if r := sink.SampleRate(); r != 1 {
		t.Fatalf("sample rate after burst = %v, want 1", r)
	}

	// Second batch at the same instant: no tokens left, so sampling floors
	// at minKeepProb and nearly everything is dropped — bounded ingest.
	for i := range batch {
		batch[i] = telRec(100 + i)
	}
	stored, err = sink.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stored >= 50 {
		t.Fatalf("pressure append stored %d of 100, want heavy thinning", stored)
	}
	p := sink.SampleRate()
	if p <= 0 || p >= 1 {
		t.Fatalf("recorded keep probability = %v, want in (0,1)", p)
	}
	recs, total := sink.Snapshot()
	if int(total) != 100+stored || len(recs) != 100+stored {
		t.Fatalf("total = %d window = %d, want %d (watermark counts stored records only)",
			total, len(recs), 100+stored)
	}
	if sink.Offered() != 200 {
		t.Fatalf("offered = %d, want 200", sink.Offered())
	}
	// Survivors of the thinned batch carry weight 1/p; the burst's records
	// carry implicit weight 1.
	for _, r := range recs[:100] {
		if r.Weight != 0 {
			t.Fatalf("unsampled record has explicit weight %v", r.Weight)
		}
	}
	for _, r := range recs[100:] {
		if r.EffectiveWeight() < 1/p-1e-9 || r.EffectiveWeight() > 1/p+1e-9 {
			t.Fatalf("sampled record weight = %v, want 1/p = %v", r.EffectiveWeight(), 1/p)
		}
	}

	// After the clock advances, the bucket refills and sampling disengages.
	now = now.Add(20 * time.Second)
	stored, err = sink.Append([]expdata.PlanRecord{telRec(999)})
	if err != nil || stored != 1 {
		t.Fatalf("post-refill append stored %d (err %v), want 1", stored, err)
	}
	if r := sink.SampleRate(); r != 1 {
		t.Fatalf("sample rate after refill = %v, want 1", r)
	}
}

// TestTelemetryFirehoseConcurrent hammers two partitioned sinks from many
// goroutines with tiny segments and sampling enabled, then proves the
// firehose guarantees: bounded on-disk footprint, no torn or interleaved
// lines in any segment, per-partition isolation (every line belongs to its
// own tenant), and intact watermark accounting. Run under -race in CI.
func TestTelemetryFirehoseConcurrent(t *testing.T) {
	dir := t.TempDir()
	open := func(label string) *Sink {
		s, err := Open(Opts{
			Path:         filepath.Join(dir, label+".jsonl"),
			SegmentBytes: 2048,
			MaxSegments:  3,
			SampleRate:   500,
			SampleBurst:  200,
			SampleSeed:   11,
			Label:        label,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sinks := map[string]*Sink{"alpha": open("alpha"), "beta": open("beta")}

	var wg sync.WaitGroup
	const writers, batches, batchLen = 4, 50, 8
	for label, s := range sinks {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(label string, s *Sink, w int) {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					recs := make([]expdata.PlanRecord, batchLen)
					for i := range recs {
						recs[i] = telRec(w*10000 + b*100 + i)
						recs[i].DB = label
					}
					if _, err := s.Append(recs); err != nil {
						t.Error(err)
						return
					}
				}
			}(label, s, w)
		}
	}
	wg.Wait()

	for label, s := range sinks {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		offered := s.Offered()
		if want := int64(writers * batches * batchLen); offered != want {
			t.Fatalf("%s offered = %d, want %d", label, offered, want)
		}
		if s.Total() > offered {
			t.Fatalf("%s stored %d > offered %d", label, s.Total(), offered)
		}
		// Bounded footprint: at most MaxSegments segments, each within one
		// record's overshoot of the rotation threshold.
		var onDisk int64
		segs := 0
		for _, seg := range s.segmentPaths() {
			info, err := os.Stat(seg)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			segs++
			onDisk += info.Size()
			if info.Size() > 2048+1024 {
				t.Fatalf("%s segment %s is %d bytes, exceeds bound", label, seg, info.Size())
			}
		}
		if segs > 3 {
			t.Fatalf("%s has %d segments, bound is 3", label, segs)
		}
		// Every line in every segment parses whole (no torn or interleaved
		// writes) and belongs to this partition (no cross-tenant leakage).
		for _, seg := range s.segmentPaths() {
			f, err := os.Open(seg)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				var rec expdata.PlanRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					t.Fatalf("%s: torn/interleaved line %q: %v", seg, sc.Text(), err)
				}
				if rec.DB != label {
					t.Fatalf("%s: record for tenant %q leaked into partition %q", seg, rec.DB, label)
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTelemetryAppendAfterClose fails loudly instead of writing to a
// closed file — the eviction path depends on this being safe.
func TestTelemetryAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	sink, err := Open(Opts{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	appendOne(t, sink, telRec(0))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sink.Append([]expdata.PlanRecord{telRec(1)}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
