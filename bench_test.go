package repro_test

// Root benchmark harness: one Benchmark per table and figure of the
// paper's evaluation, plus micro-benchmarks for the engine's hot paths.
//
// Environment knobs:
//
//	AIMAI_SCALE  workload scale factor (default 0.08 for benches)
//	AIMAI_FULL   set to 1 to disable Quick mode (full repeats/models)
//
// Each experiment benchmark builds (once, shared) the fifteen-database
// corpus, regenerates its table, and logs it; wall time of the experiment
// is the benchmark result.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/aimai"
	"repro/internal/candidates"
	"repro/internal/embed"
	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/opt"
	"repro/internal/engine/stats"
	"repro/internal/expdata"
	"repro/internal/experiments"
	"repro/internal/feat"
	"repro/internal/learn"
	"repro/internal/ml/forest"
	"repro/internal/ml/tree"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/server/registry"
	"repro/internal/tuner"
	"repro/internal/util"
	"repro/internal/workload"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		scale := 0.08
		if s := os.Getenv("AIMAI_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		quick := os.Getenv("AIMAI_FULL") == ""
		envVal, envErr = experiments.NewEnv(experiments.Config{Scale: scale, Quick: quick})
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// benchExperiment regenerates one experiment per iteration and logs the
// resulting table once.
func benchExperiment(b *testing.B, id string) {
	env := benchEnv(b)
	run := experiments.Registry()[id]
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := run(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkFigure1(b *testing.B)  { benchExperiment(b, "figure1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "figure6") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "figure7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "figure9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "figure12") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "figure13") }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "figure14") }
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "figure15") }
func BenchmarkTable5(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)   { benchExperiment(b, "table6") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationTrees(b *testing.B) { benchExperiment(b, "ablation-trees") }
func BenchmarkAblationAlpha(b *testing.B) { benchExperiment(b, "ablation-alpha") }

// Micro-benchmarks for the substrate's hot paths.

func microWorkload() (*workload.Workload, *opt.Optimizer, *exec.Executor) {
	w := workload.TPCH("bench-micro", 8000, 3)
	ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), stats.DefaultSampleSize, stats.DefaultBuckets)
	return w, opt.New(w.Schema, ds), exec.New(w.DB)
}

func BenchmarkOptimizerPlan(b *testing.B) {
	w, o, _ := microWorkload()
	q := w.Query("q5") // 6-way join: the heaviest planning case
	cfg := catalog.NewConfiguration(
		&catalog.Index{Table: "lineitem", KeyColumns: []string{"l_order"}},
		&catalog.Index{Table: "orders", KeyColumns: []string{"o_cust"}},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorRun(b *testing.B) {
	w, o, ex := microWorkload()
	q := w.Query("q6")
	p, err := o.Optimize(q, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := util.NewRNG(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(p, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhatIfCachedPlan(b *testing.B) {
	w, o, _ := microWorkload()
	wi := opt.NewWhatIf(o)
	q := w.Query("q3")
	cfg := catalog.NewConfiguration(&catalog.Index{Table: "orders", KeyColumns: []string{"o_date"}})
	if _, err := wi.Plan(q, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wi.Plan(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairFeaturization(b *testing.B) {
	w, o, _ := microWorkload()
	q := w.Query("q3")
	p1, _ := o.Optimize(q, nil)
	p2, _ := o.Optimize(q, catalog.NewConfiguration(&catalog.Index{Table: "orders", KeyColumns: []string{"o_date"}}))
	f := feat.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Pair(p1, p2)
	}
}

func BenchmarkClassifierTrain(b *testing.B) {
	w := workload.TPCH("bench-train", 2500, 7)
	ds, err := expdata.Collect(w, expdata.CollectOpts{Seed: 3, MaxConfigsPerQuery: 8, ExecRepeats: 2})
	if err != nil {
		b.Fatal(err)
	}
	pairs := ds.Pairs(40, util.NewRNG(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := models.NewClassifier(feat.Default(), models.RF(100, int64(i)), expdata.DefaultAlpha)
		if err := clf.Train(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifierInference(b *testing.B) {
	w := workload.TPCH("bench-infer", 2500, 7)
	ds, err := expdata.Collect(w, expdata.CollectOpts{Seed: 3, MaxConfigsPerQuery: 8, ExecRepeats: 2})
	if err != nil {
		b.Fatal(err)
	}
	pairs := ds.Pairs(40, util.NewRNG(9))
	clf := models.NewClassifier(feat.Default(), models.RF(100, 1), expdata.DefaultAlpha)
	if err := clf.Train(pairs); err != nil {
		b.Fatal(err)
	}
	p := pairs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Compare(p.P1.Plan, p.P2.Plan)
	}
}

func BenchmarkTuneQuery(b *testing.B) {
	w := workload.TPCH("bench-tune", 5000, 7)
	sys, err := aimai.Open(w, 7)
	if err != nil {
		b.Fatal(err)
	}
	tn := sys.NewTuner(nil, aimai.TunerOptions{})
	q := w.Query("q3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.TuneQuery(context.Background(), q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTuneWorkload measures a full workload-level search at a given
// what-if parallelism. The what-if cache is rebuilt per iteration so every
// iteration pays for its probes (a warm cache would hide the fan-out).
//
// Probing is CPU-bound in the planner, so the Parallel4/Serial ratio
// tracks physical cores: ~parity on a single-core host (the pool adds no
// overhead), approaching 4x with >= 4 cores.
func benchTuneWorkload(b *testing.B, parallelism int) {
	w := workload.TPCH("bench-tunew", 5000, 7)
	ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), stats.DefaultSampleSize, stats.DefaultBuckets)
	o := opt.New(w.Schema, ds)
	qs := w.Queries[:12]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn := tuner.New(w.Schema, opt.NewWhatIf(o), nil, tuner.Options{Parallelism: parallelism})
		if _, err := tn.TuneWorkload(context.Background(), qs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuneWorkloadSerial(b *testing.B)    { benchTuneWorkload(b, 1) }
func BenchmarkTuneWorkloadParallel4(b *testing.B) { benchTuneWorkload(b, 4) }

// BenchmarkCandidateGen measures the role-classified candidate generator
// on the composite workload's full query mix — the per-query cost the
// tuner pays before any what-if probe.
func BenchmarkCandidateGen(b *testing.B) {
	w := workload.Composite("bench-cands", 4000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range w.Queries {
			if len(candidates.CandidateIndexes(q, w.Schema)) == 0 {
				b.Fatalf("%s: no candidates", q.Name)
			}
		}
	}
}

// BenchmarkTuneWorkloadCompressed tunes a duplicate-heavy trace (6 renamed
// copies per template) with workload compression on. Compare against
// BenchmarkTuneWorkloadSerial for the probe savings compression buys.
func BenchmarkTuneWorkloadCompressed(b *testing.B) {
	w := workload.Composite("bench-tunec", 4000, 7)
	ds := stats.BuildDatabaseStats(w.DB, util.NewRNG(4), stats.DefaultSampleSize, stats.DefaultBuckets)
	o := opt.New(w.Schema, ds)
	qs := workload.Replicate(w.Queries, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn := tuner.New(w.Schema, opt.NewWhatIf(o), nil, tuner.Options{Parallelism: 1, Compress: true})
		if _, err := tn.TuneWorkload(context.Background(), qs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuneWorkloadSerialMetricsOn is the metrics-enabled companion of
// BenchmarkTuneWorkloadSerial: the delta between the two is the live cost
// of the observability layer (TestObsDisabledOverheadBudget bounds the
// disabled cost).
func BenchmarkTuneWorkloadSerialMetricsOn(b *testing.B) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	benchTuneWorkload(b, 1)
}

// synthTrainingData builds a deterministic matrix shaped like the learn
// loop's pair features: PairDim columns mixing tie-heavy discrete values
// (sparse pair-diff channels) with continuous ones, three cost labels.
func synthTrainingData(n int, seed int64) ([][]float64, []int) {
	d := feat.Default().PairDim()
	rng := util.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			if j%3 == 0 {
				row[j] = float64(rng.Intn(5))
			} else {
				row[j] = rng.NormFloat64()
			}
		}
		X[i] = row
		s := row[1] + 0.5*row[4] + 0.25*float64(rng.Intn(3))
		switch {
		case s < -0.4:
			y[i] = 0
		case s < 0.6:
			y[i] = 1
		default:
			y[i] = 2
		}
	}
	return X, y
}

// BenchmarkTreeFit measures a single full-feature decision-tree fit — the
// unit of work every forest tree and GBT round pays.
func BenchmarkTreeFit(b *testing.B) {
	X, y := synthTrainingData(2000, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tree.New(tree.Config{MinLeaf: 1, ImpurityThreshold: 1e-6})
		if err := tr.FitClassifier(X, y, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrain measures a challenger-sized random-forest fit (the
// learn loop's per-cycle training cost) at default parallelism.
func BenchmarkForestTrain(b *testing.B) {
	X, y := synthTrainingData(600, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := forest.NewClassifier(forest.Config{Trees: 60, MinLeaf: 1, ImpurityThreshold: 1e-6, Seed: 7})
		if err := f.Fit(X, y, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTelemetry emits synthetic learn-loop telemetry: templates x 5
// records whose measured cost equals the channel mass.
func benchTelemetry(templates int) []expdata.PlanRecord {
	var out []expdata.PlanRecord
	var fp uint64
	for t := 0; t < templates; t++ {
		for _, m := range []float64{100, 200, 400, 800, 820} {
			fp++
			out = append(out, expdata.PlanRecord{
				DB:           "db",
				Query:        fmt.Sprintf("q%02d", t),
				TemplateHash: uint64(1000 + t),
				Fingerprint:  fp,
				Cost:         m,
				EstTotalCost: m,
				Channels: map[string][]float64{
					"EstNodeCost":                   {m},
					"LeafWeightEstBytesWeightedSum": {m / 2},
				},
			})
		}
	}
	return out
}

// BenchmarkLearnCycle measures a full dry-run learn cycle on a steady
// telemetry window: compaction + featurization + challenger training +
// shadow eval, end to end.
func BenchmarkLearnCycle(b *testing.B) {
	recs := benchTelemetry(24)
	reg, err := registry.Open("")
	if err != nil {
		b.Fatal(err)
	}
	loop := learn.NewLoop(reg, func() ([]expdata.PlanRecord, int64) {
		return recs, int64(len(recs))
	}, 0, learn.Options{Seed: 3, Trees: 40, DryRun: true})
	defer loop.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loop.RunCycle(context.Background(), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbedPlan measures one plan-embedding forward pass — the
// per-record cost the embedding drift detector pays inside each cycle.
func BenchmarkEmbedPlan(b *testing.B) {
	recs := benchTelemetry(24)
	channels := feat.DefaultChannels()
	samples := embed.RecordSamples(recs, channels)
	inputs := make([][]float64, len(samples))
	for i, s := range samples {
		inputs[i] = embed.PlanInput(channels, s.Vectors, s.Est)
	}
	enc, err := embed.Train(inputs, embed.Config{Epochs: 10, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	s := &samples[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := enc.EmbedPlan(s.Vectors, s.Est); len(out) == 0 {
			b.Fatal("empty embedding")
		}
	}
}

// BenchmarkWorkloadEmbed measures pooling a full telemetry window into a
// workload embedding (featurization + forward passes + moment pooling).
func BenchmarkWorkloadEmbed(b *testing.B) {
	recs := benchTelemetry(24)
	channels := feat.DefaultChannels()
	samples := embed.RecordSamples(recs, channels)
	inputs := make([][]float64, len(samples))
	for i, s := range samples {
		inputs[i] = embed.PlanInput(channels, s.Vectors, s.Est)
	}
	enc, err := embed.Train(inputs, embed.Config{Epochs: 10, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if we := enc.Workload(samples); we == nil {
			b.Fatal("empty workload embedding")
		}
	}
}

func BenchmarkCollectExecutionData(b *testing.B) {
	w := workload.TPCH("bench-collect", 2000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expdata.Collect(w, expdata.CollectOpts{Seed: int64(i), MaxConfigsPerQuery: 6, ExecRepeats: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
